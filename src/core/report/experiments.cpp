#include "core/report/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/report/checkpoint.hpp"
#include "core/scenario/scenario.hpp"
#include "machines/machines.hpp"
#include "obs/json.hpp"
#include "obs/prof.hpp"
#include "parmsg/sim_transport.hpp"
#include "robust/fault.hpp"
#include "util/ascii_plot.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"
#include "util/wallclock.hpp"

namespace balbench::report {

namespace {

constexpr double kMiB = 1024.0 * 1024.0;

}  // namespace

// ---------------------------------------------------------------------------
// Sweep specification
// ---------------------------------------------------------------------------

std::vector<BeffRun> beff_specs(Scope scope) {
  std::vector<BeffRun> v;
  auto add = [&](const char* key, const char* display, int np, bool first,
                 bool in_table, PaperBeffRow paper = {}) {
    BeffRun run;
    run.key = key;
    run.display = display;
    run.nprocs = np;
    run.first = first;
    run.in_table = in_table;
    run.paper = paper;
    v.push_back(std::move(run));
  };
  if (scope == Scope::Quick) {
    add("t3e", "Cray T3E/900", 8, true, false);
    add("t3e", "Cray T3E/900", 2, false, false);
    add("sx5", "NEC SX-5/8B", 4, true, true, {5439, 1360, 8762, 8758, -1});
    return v;
  }
  // Doc scope: the Table 1 sweep of bench/table1_beff (full fidelity),
  // paper reference values transcribed from the paper's Table 1.
  add("t3e", "Cray T3E/900", 512, true, true, {19919, 39, 98, 193, 330});
  add("t3e", "Cray T3E/900", 256, false, false);  // Fig. 1 balance point
  add("t3e", "Cray T3E/900", 128, false, false);
  add("t3e", "Cray T3E/900", 64, false, true, {3159, 49, 110, 192, 0});
  add("t3e", "Cray T3E/900", 24, false, false);
  add("t3e", "Cray T3E/900", 2, false, true, {183, 91, 210, 210, 0});
  add("sr8000rr", "SR 8000 round-robin", 128, true, true, {3695, 29, 90, 105, 776});
  add("sr8000rr", "SR 8000 round-robin", 24, false, true, {915, 38, 115, 110, 0});
  add("sr8000", "SR 8000 sequential", 24, true, true, {1806, 75, 226, 400, 954});
  add("sr2201", "SR 2201", 16, true, true, {528, 33, 91, 96, -1});
  add("sx5", "NEC SX-5/8B", 4, true, true, {5439, 1360, 8762, 8758, -1});
  add("sx4", "NEC SX-4/32", 16, true, true, {9670, 604, 3141, 3242, 0});
  add("sx4", "NEC SX-4/32", 8, false, true, {5766, 641, 3555, 3552, 0});
  add("sx4", "NEC SX-4/32", 4, false, false);
  add("hpv", "HP-V 9000", 7, true, true, {435, 62, 162, 162, 0});
  add("sv1", "SGI SV1-B/16-8", 15, true, true, {1445, 96, 373, 375, 994});
  return v;
}

std::vector<IoRun> io_specs(Scope scope) {
  std::vector<IoRun> v;
  auto add = [&](const char* figure, const char* key, const char* display,
                 int np, double T, std::int64_t cap = 0) {
    IoRun run;
    run.figure = figure;
    run.key = key;
    run.display = display;
    run.nprocs = np;
    run.scheduled_seconds = T;
    run.mpart_cap = cap;
    v.push_back(std::move(run));
  };
  if (scope == Scope::Quick) {
    for (int p : {2, 4}) add("fig3", "t3e", "T3E", p, 600.0);
    add("fig5", "sp", "SP", 16, 900.0);
    add("fig5", "sx5", "SX-5", 2, 900.0, 2LL << 20);
    add("fig4", "t3e", "T3E", 4, 600.0);
    return v;
  }
  // Fig. 3: b_eff_io over process counts, T = 10 min (the T that the
  // committed table shows; bench/fig3_beffio_scaling also sweeps T).
  for (const auto& [key, display] :
       std::vector<std::pair<const char*, const char*>>{{"t3e", "T3E"},
                                                        {"sp", "SP"}}) {
    for (int p : {2, 4, 8, 16, 32, 64, 128}) add("fig3", key, display, p, 600.0);
  }
  // Fig. 5: the official T >= 15 min schedule (bench/fig5_beffio_final).
  for (int p : {16, 32, 64, 128}) add("fig5", "sp", "SP", p, 900.0);
  for (int p : {8, 16, 32, 64, 128}) add("fig5", "t3e", "T3E", p, 900.0);
  for (int p : {8, 16, 24}) add("fig5", "sr8000", "SR 8000", p, 900.0);
  for (int p : {2, 4}) add("fig5", "sx5", "SX-5", p, 900.0, 2LL << 20);
  // Fig. 4: per-pattern detail, T = 10 min (bench/fig4_beffio_detail).
  add("fig4", "sp", "SP", 64, 600.0);
  add("fig4", "t3e", "T3E", 64, 600.0);
  add("fig4", "sr8000", "SR 8000", 24, 600.0);
  add("fig4", "sx5", "SX-5", 4, 600.0, 2LL << 20);
  return v;
}

std::vector<KernelRun> kernel_specs(Scope scope) {
  std::vector<KernelRun> v;
  auto add = [&](const char* key, const char* display, int np) {
    KernelRun run;
    run.key = key;
    run.display = display;
    run.nprocs = np;
    v.push_back(std::move(run));
  };
  if (scope == Scope::Quick) {
    add("t3e", "Cray T3E/900", 8);
    add("sx5", "NEC SX-5/8B", 4);
    return v;
  }
  // Doc scope: one suite per machine at its headline partition --
  // the same (machine, nprocs) as the Table 1 rows where one exists,
  // so the balance table can divide b_eff by the *matching* R_max.
  // SP and Beowulf have no Table 1 b_eff row; the SP partition matches
  // its largest Fig. 5 b_eff_io run, the Beowulf one is the Sec. 6
  // "Top Clusters" configuration.
  add("t3e", "Cray T3E/900", 512);
  add("sr8000rr", "SR 8000 round-robin", 128);
  add("sr8000", "SR 8000 sequential", 24);
  add("sr2201", "SR 2201", 16);
  add("sx5", "NEC SX-5/8B", 4);
  add("sx4", "NEC SX-4/32", 16);
  add("hpv", "HP-V 9000", 7);
  add("sv1", "SGI SV1-B/16-8", 15);
  add("sp", "IBM SP", 128);
  add("beowulf", "Beowulf cluster", 32);
  return v;
}

std::vector<FaultSweepRun> fault_sweep_specs(Scope scope) {
  std::vector<FaultSweepRun> v;
  auto add = [&](const char* key, const char* display, int np, double rate) {
    FaultSweepRun run;
    run.key = key;
    run.display = display;
    run.nprocs = np;
    run.rate = rate;
    // Same defaults the --faults grammar would give "link=<rate>,
    // degrade=0.5": seed 2001, no window, no drop, default retries.
    run.plan.link_degrade_prob = rate;
    run.plan.degrade_factor = 0.5;
    v.push_back(std::move(run));
  };
  if (scope == Scope::Quick) {
    for (double rate : {0.0, 0.25, 0.5}) add("t3e", "Cray T3E/900", 2, rate);
    return v;
  }
  // Doc scope: the b_eff degradation curve of the "Fault-scenario
  // sweeps" section -- one headline cell re-run across link fault
  // rates (rate 0 is the clean baseline the chart normalizes against).
  for (double rate : {0.0, 0.05, 0.1, 0.2, 0.35, 0.5}) {
    add("t3e", "Cray T3E/900", 8, rate);
  }
  return v;
}

namespace {

// ---------------------------------------------------------------------------
// Formatting helpers for the rendered document
// ---------------------------------------------------------------------------

/// Integer with a thin space every three digits ("19 919"), the style
/// of the paper's Table 1.
std::string thousands(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ' ';
    out += digits[i];
  }
  return v < 0 ? "-" + out : out;
}

/// Bandwidth in MByte/s as a thousands-separated integer (the unit of
/// Table 1 and util::format_mbps: bytes / 2^20).
std::string mbps(double bytes_per_second) {
  return thousands(std::llround(bytes_per_second / kMiB));
}

/// Small bandwidths (Fig. 4 bullets): one decimal below 10 MB/s.
std::string mbps_small(double bytes_per_second) {
  const double v = bytes_per_second / kMiB;
  char buf[32];
  if (v < 10.0) {
    std::snprintf(buf, sizeof buf, "%.1f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(std::llround(v)));
  }
  return buf;
}

/// GFlop/s with one decimal below 10, integer above (balance table).
std::string gflops(double flops_per_second) {
  const double v = flops_per_second / 1e9;
  char buf[32];
  if (v < 10.0) {
    std::snprintf(buf, sizeof buf, "%.1f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(std::llround(v)));
  }
  return buf;
}

/// Bytes-per-flop balance factor, 3 significant digits (the values
/// span 1e-4 .. 1, paper Fig. 1 scale).
std::string bpf(double bytes_per_flop) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3g", bytes_per_flop);
  return buf;
}

/// Compact dimensionless number ("0.25", "35"): fault rates and
/// degrade factors in the fault-sweep section.
std::string num_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Unit-free variant of marker() for non-MByte/s comparisons (same
/// fixed thresholds: 10 % check mark, 50 % approx, else the ratio).
std::string ratio_marker(double paper, double measured) {
  const double r = measured / paper;
  if (std::fabs(r - 1.0) <= 0.10) return " ✓";
  if (std::fabs(r - 1.0) <= 0.50) return " ≈";
  char buf[32];
  std::snprintf(buf, sizeof buf, " (≈%.2f×)", r);
  return buf;
}

/// Comparison marker for a paper-vs-measured pair: within 10 % of the
/// paper value = "✓", within 50 % = "≈", otherwise the ratio itself.
/// One fixed rule for every cell keeps the document regenerable.
std::string marker(double paper_mbps, double measured_bps) {
  const double r = measured_bps / kMiB / paper_mbps;
  if (std::fabs(r - 1.0) <= 0.10) return " ✓";
  if (std::fabs(r - 1.0) <= 0.50) return " ≈";
  char buf[32];
  std::snprintf(buf, sizeof buf, " (≈%.2f×)", r);
  return buf;
}

/// "paper → measured marker" cell; plain measured value if the paper's
/// table has no number there.
std::string cmp_cell(double paper_mbps, double measured_bps) {
  if (paper_mbps <= 0.0) return mbps(measured_bps);
  return thousands(std::llround(paper_mbps)) + " → " + mbps(measured_bps) +
         marker(paper_mbps, measured_bps);
}

/// Greedy 72-column wrap for computed paragraphs; prefix applies to
/// every line after the first ("* " bullets pass "  ").
std::string wrap(const std::string& text, const std::string& cont_prefix,
                 std::size_t width = 72) {
  std::istringstream in(text);
  std::string word, line, out;
  while (in >> word) {
    const std::string candidate = line.empty() ? word : line + " " + word;
    if (!line.empty() && candidate.size() > width) {
      out += line + "\n";
      line = cont_prefix + word;
    } else {
      line = candidate;
    }
  }
  return out + line;
}

const BeffRun* find_beff(const ExperimentsData& d, const std::string& key,
                         int nprocs) {
  for (const auto& b : d.beff) {
    if (b.key == key && b.nprocs == nprocs) return &b;
  }
  return nullptr;
}

const IoRun* find_io(const ExperimentsData& d, const std::string& figure,
                     const std::string& key, int nprocs) {
  for (const auto& r : d.io) {
    if (r.figure == figure && r.key == key && r.nprocs == nprocs) return &r;
  }
  return nullptr;
}

/// Balance-table rule for the b_eff_io numerator (docs/METRICS.md):
/// the machine's best measured b_eff_io, preferring the official
/// Fig. 5 schedule (T >= 15 min) and falling back to Fig. 3; nullptr
/// when the machine has no I/O runs in the sweep.
const IoRun* best_io(const ExperimentsData& d, const std::string& key) {
  for (const char* fig : {"fig5", "fig3"}) {
    const IoRun* best = nullptr;
    for (const auto& r : d.io) {
      if (r.figure != fig || r.key != key) continue;
      if (best == nullptr || r.r.b_eff_io > best->r.b_eff_io) best = &r;
    }
    if (best != nullptr) return best;
  }
  return nullptr;
}

/// Bandwidth of the (type, chunk size l) cell of one access method; 0
/// when the pattern table has no timed pattern with that chunk size.
double pattern_bw(const beffio::AccessMethodResult& am, int type,
                  std::int64_t l) {
  for (const auto& pr : am.types[static_cast<std::size_t>(type)].patterns) {
    if (!pr.pattern.fill_up && pr.pattern.l == l && pr.pattern.time_units > 0) {
      return pr.bandwidth();
    }
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// JSON helpers
// ---------------------------------------------------------------------------

void write_metrics(obs::JsonWriter& w, const obs::MetricsSnapshot& m) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [k, v] : m.counters) w.field(k, v);
  w.end_object();
  w.key("sums").begin_object();
  for (const auto& [k, v] : m.sums) w.field(k, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [k, v] : m.gauges) w.field(k, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [k, h] : m.histograms) {
    w.key(k).begin_object();
    w.field("count", h.count).field("sum", h.sum).field("max", h.max);
    w.key("buckets").begin_array();
    for (const auto& [index, count] : h.buckets) {
      w.begin_array().value(index).value(count).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

/// Emits "status" (worst outcome) plus the not-ok cells of one run.
/// No-op when the run has no statuses (faults off), preserving the
/// pre-fault record bytes.
void write_status_fields(obs::JsonWriter& w,
                         const std::vector<robust::CellStatus>& statuses,
                         const std::vector<std::string>& labels,
                         robust::Outcome worst) {
  if (statuses.empty()) return;
  w.field("status", robust::outcome_name(worst));
  w.key("cells").begin_array();
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    const auto& s = statuses[i];
    if (s.outcome == robust::Outcome::Ok) continue;
    w.begin_object();
    w.field("label", i < labels.size() ? labels[i] : std::to_string(i));
    w.field("status", robust::outcome_name(s.outcome));
    w.field("attempts", s.attempts);
    w.field("backoff_s", s.backoff_s);
    w.field("error", s.error);
    w.end_object();
  }
  w.end_array();
}

/// One kernel cell as JSON, shared by the run record's "kernels" array
/// and the standalone kernel record so the two can never drift.
void write_kernel_run(obs::JsonWriter& w, const KernelRun& k,
                      const ExperimentsData& d) {
  w.begin_object();
  w.field("machine", k.key);
  w.field("system", k.display);
  w.field("nprocs", k.nprocs);
  w.field("rmax_flops", k.r.rmax_flops());
  w.field("stream_triad_Bps", k.r.stream_triad_bps());
  w.field("suite_virtual_seconds", k.r.suite_seconds);
  w.key("kernels").begin_array();
  for (const auto& kr : k.r.kernels) {
    w.begin_object();
    w.field("name", kr.name);
    w.field("flops", kr.flops);
    w.field("mem_bytes", kr.bytes);
    w.field("comm_bytes", kr.comm_bytes);
    w.field("virtual_seconds", kr.seconds);
    w.field("value", kr.value);
    w.field("unit", kr.unit);
    w.end_object();
  }
  w.end_array();
  // Derived balance factors (docs/METRICS.md): communication and I/O
  // numerators divided by the *measured* R_max of this cell.  A
  // missing numerator omits the field (readers must not assume it).
  const double rmax = k.r.rmax_flops();
  const BeffRun* b = find_beff(d, k.key, k.nprocs);
  const IoRun* io = best_io(d, k.key);
  w.key("balance").begin_object();
  if (b != nullptr) w.field("b_eff_per_rmax_Bpf", b->r.b_eff / rmax);
  if (io != nullptr) w.field("b_eff_io_per_rmax_Bpf", io->r.b_eff_io / rmax);
  w.field("stream_per_rmax_Bpf", k.r.stream_triad_bps() / rmax);
  w.end_object();
  w.key("metrics");
  write_metrics(w, k.r.metrics);
  w.end_object();
}

}  // namespace

const char* scope_name(Scope s) {
  return s == Scope::Quick ? "quick" : "doc";
}

// ---------------------------------------------------------------------------
// Sweep execution
// ---------------------------------------------------------------------------

namespace {

/// Verbose progress lines go to stderr only, so the byte-identity
/// contract on stdout/record/document outputs holds with or without
/// them.  One fprintf per line (atomic on POSIX) keeps concurrent
/// cells from interleaving mid-line.
double log_cell_start(const std::string& what) {
  std::fprintf(stderr, "[report] start  %s\n", what.c_str());
  return util::wall_now();
}

void log_cell_finish(const std::string& what, double t0) {
  std::fprintf(stderr, "[report] finish %s (%.2fs wall)\n", what.c_str(),
               util::wall_now() - t0);
}

}  // namespace

ExperimentsData run_experiments(Scope scope, int jobs, bool verbose) {
  ExperimentOptions options;
  options.scope = scope;
  options.jobs = jobs;
  options.verbose = verbose;
  return run_experiments(options);
}

namespace {

/// --kill-after N: die the way a crash would (no unwinding, no
/// journal flush beyond what record_*() already persisted).  The
/// robust_kill_resume ctest then proves a resumed sweep is
/// byte-identical to an uninterrupted one.
void maybe_kill(const Checkpoint* ck, int kill_after) {
  if (ck == nullptr || kill_after <= 0) return;
  if (ck->recorded() >= static_cast<std::size_t>(kill_after)) {
    std::fprintf(stderr, "[checkpoint] --kill-after %d reached, raising "
                 "SIGKILL\n", kill_after);
    std::raise(SIGKILL);
  }
}

/// Scenario cells -> the pipeline's run structs.  The conversion lives
/// here (not in core/scenario) so the scenario library stays free of
/// report types; resolution already succeeded during validation.
std::vector<BeffRun> beff_runs_from(const scenario::Scenario& sc) {
  std::vector<BeffRun> v;
  for (const auto& c : sc.beff) {
    BeffRun run;
    run.key = c.machine;
    run.display = sc.resolve_machine(c.machine).name;
    run.nprocs = c.nprocs;
    run.first = c.analysis;
    // Scenario cells always render as table rows; paper reference
    // columns stay 0 (the renderer prints "--" for absent references).
    run.in_table = true;
    v.push_back(std::move(run));
  }
  return v;
}

std::vector<IoRun> io_runs_from(const scenario::Scenario& sc) {
  std::vector<IoRun> v;
  for (const auto& c : sc.io) {
    IoRun run;
    run.key = c.machine;
    run.display = sc.resolve_machine(c.machine).name;
    run.figure = "fig3";  // scenario io cells render in the Fig. 3 table
    run.nprocs = c.nprocs;
    run.scheduled_seconds = c.scheduled_seconds;
    run.mpart_cap = c.mpart_cap;
    v.push_back(std::move(run));
  }
  return v;
}

std::vector<KernelRun> kernel_runs_from(const scenario::Scenario& sc) {
  std::vector<KernelRun> v;
  for (const auto& c : sc.kernels) {
    KernelRun run;
    run.key = c.machine;
    run.display = sc.resolve_machine(c.machine).name;
    run.nprocs = c.nprocs;
    v.push_back(std::move(run));
  }
  return v;
}

std::vector<FaultSweepRun> fault_sweep_runs_from(const scenario::Scenario& sc) {
  std::vector<FaultSweepRun> v;
  if (!sc.has_fault_sweep) return v;
  const scenario::FaultSweep& fs = sc.fault_sweep;
  for (double rate : fs.rates) {
    FaultSweepRun run;
    run.key = fs.machine;
    run.display = sc.resolve_machine(fs.machine).name;
    run.nprocs = fs.nprocs;
    run.rate = rate;
    run.plan.seed = fs.seed;
    run.plan.link_degrade_prob = rate;
    run.plan.degrade_factor = fs.degrade_factor;
    run.plan.window_start_s = fs.window_start_s;
    run.plan.window_end_s = fs.window_end_s;
    v.push_back(std::move(run));
  }
  return v;
}

}  // namespace

ExperimentsData run_experiments(const ExperimentOptions& options) {
  const Scope scope = options.scope;
  const int jobs = options.jobs;
  const bool verbose = options.verbose;
  const scenario::Scenario* sc = options.scenario;
  ExperimentsData data;
  data.scope = scope;
  if (sc != nullptr) {
    data.scenario = sc->name;
    data.beff = beff_runs_from(*sc);
    data.io = io_runs_from(*sc);
    data.kernels = kernel_runs_from(*sc);
    data.fault_sweep = fault_sweep_runs_from(*sc);
  } else {
    data.beff = beff_specs(scope);
    data.io = io_specs(scope);
    data.kernels = kernel_specs(scope);
    data.fault_sweep = fault_sweep_specs(scope);
  }
  // Precedence: an explicit --faults plan beats the scenario's own
  // "faults" section (the CLI is the outermost override).
  const robust::FaultPlan* fault_plan = options.fault_plan;
  if (fault_plan == nullptr && sc != nullptr && sc->has_faults) {
    fault_plan = &sc->faults;
  }
  if (fault_plan != nullptr) data.faults = fault_plan->describe();

  // Machine keys resolve scenario-first so a scenario can shadow a
  // built-in short name; without a scenario this is machine_by_name.
  auto resolve = [sc](const std::string& key) {
    if (sc != nullptr) {
      if (const machines::MachineSpec* m = sc->find_machine(key)) return *m;
    }
    return machines::machine_by_name(key);
  };

  // The journal key pins everything that changes a task's bytes: the
  // sweep configuration hash (scenario-aware) AND the fault plan (same
  // seed => same injected schedule => same results; a different spec
  // must not be replayed into this run).
  std::unique_ptr<Checkpoint> ck;
  if (!options.checkpoint_path.empty()) {
    std::string key = config_hash(scope, sc);
    if (fault_plan != nullptr) {
      key += "+faults:" + fault_plan->describe();
    }
    ck = std::make_unique<Checkpoint>(options.checkpoint_path, std::move(key),
                                      options.resume);
  }

  // One flat task list: every b_eff partition, every b_eff_io run and
  // the termination-check micro measurement are independent
  // simulations writing into disjoint slots; host scheduling order
  // cannot change any output byte (DESIGN.md Sec. 9/10.2).
  const std::size_t n_beff = data.beff.size();
  const std::size_t n_io = data.io.size();
  const std::size_t n_kern = data.kernels.size();
  const std::size_t n_fs = data.fault_sweep.size();
  util::parallel_for(jobs, n_beff + n_io + n_kern + n_fs + 1,
                     [&](std::size_t i) {
    if (i < n_beff) {
      BeffRun& run = data.beff[i];
      auto m = resolve(run.key);
      run.memory_per_proc = m.memory_per_proc;
      run.rmax_gflops_per_proc = m.rmax_gflops_per_proc;
      const std::string what =
          "b_eff " + run.key + ", " + std::to_string(run.nprocs) + " procs";
      const std::string task = "beff/" + std::to_string(i);
      if (ck != nullptr && ck->load_beff(task, &run.r)) {
        if (verbose) {
          std::fprintf(stderr, "[report] replay %s (checkpoint)\n",
                       what.c_str());
        }
        return;
      }
      const double t0 = verbose ? log_cell_start(what) : 0.0;
      obs::prof::Scope prof_scope("cell", what);
      parmsg::SimTransport transport(m.make_topology(run.nprocs), m.costs);
      beff::BeffOptions opt;
      opt.memory_per_proc = m.memory_per_proc;
      opt.measure_analysis = run.first;
      opt.collect_metrics = true;
      opt.fault_plan = fault_plan;
      run.r = beff::run_beff(transport, run.nprocs, opt);
      if (verbose) log_cell_finish(what, t0);
      if (ck != nullptr) {
        ck->record_beff(task, run.r);
        maybe_kill(ck.get(), options.kill_after);
      }
    } else if (i < n_beff + n_io) {
      IoRun& run = data.io[i - n_beff];
      auto m = resolve(run.key);
      char t_buf[32];
      std::snprintf(t_buf, sizeof t_buf, "T=%.0fs", run.scheduled_seconds);
      const std::string what = "b_eff_io " + run.figure + "/" + run.key + ", " +
                               std::to_string(run.nprocs) + " procs, " + t_buf;
      const std::string task = "io/" + std::to_string(i - n_beff);
      if (ck != nullptr && ck->load_io(task, &run.r)) {
        if (verbose) {
          std::fprintf(stderr, "[report] replay %s (checkpoint)\n",
                       what.c_str());
        }
        return;
      }
      const double t0 = verbose ? log_cell_start(what) : 0.0;
      obs::prof::Scope prof_scope("cell", what);
      parmsg::SimTransport transport(m.make_topology(run.nprocs), m.costs);
      beffio::BeffIoOptions opt;
      opt.scheduled_time = run.scheduled_seconds;
      opt.memory_per_node = m.memory_per_proc;
      opt.mpart_cap = run.mpart_cap;
      opt.file_prefix = m.short_name;
      opt.collect_metrics = true;
      opt.fault_plan = fault_plan;
      run.r = beffio::run_beffio(transport, *m.io, run.nprocs, opt);
      if (verbose) log_cell_finish(what, t0);
      if (ck != nullptr) {
        ck->record_io(task, run.r);
        maybe_kill(ck.get(), options.kill_after);
      }
    } else if (i < n_beff + n_io + n_kern) {
      // Kernel-suite cells are analytic (microseconds of host time)
      // and therefore never journaled: re-running them on resume is
      // byte-identical and cheaper than replaying a checkpoint entry.
      KernelRun& run = data.kernels[i - n_beff - n_io];
      auto m = resolve(run.key);
      run.rmax_gflops_per_proc = m.rmax_gflops_per_proc;
      const std::string what =
          "kernels " + run.key + ", " + std::to_string(run.nprocs) + " procs";
      const double t0 = verbose ? log_cell_start(what) : 0.0;
      obs::prof::Scope prof_scope("cell", what);
      kernels::KernelOptions opt;
      opt.collect_metrics = true;
      run.r = kernels::run_kernels(m, run.nprocs, opt);
      if (verbose) log_cell_finish(what, t0);
    } else if (i < n_beff + n_io + n_kern + n_fs) {
      // Fault-rate sweep: the same b_eff cell re-run under each link
      // fault rate.  Each point carries its own plan (rate, seed,
      // window), independent of the run-wide --faults plan.
      const std::size_t idx = i - n_beff - n_io - n_kern;
      FaultSweepRun& run = data.fault_sweep[idx];
      auto m = resolve(run.key);
      char rate_buf[32];
      std::snprintf(rate_buf, sizeof rate_buf, "link=%g", run.rate);
      const std::string what = "fault-sweep " + run.key + ", " +
                               std::to_string(run.nprocs) + " procs, " +
                               rate_buf;
      const std::string task = "faultsweep/" + std::to_string(idx);
      if (ck != nullptr && ck->load_beff(task, &run.r)) {
        if (verbose) {
          std::fprintf(stderr, "[report] replay %s (checkpoint)\n",
                       what.c_str());
        }
        return;
      }
      const double t0 = verbose ? log_cell_start(what) : 0.0;
      obs::prof::Scope prof_scope("cell", what);
      parmsg::SimTransport transport(m.make_topology(run.nprocs), m.costs);
      beff::BeffOptions opt;
      opt.memory_per_proc = m.memory_per_proc;
      opt.measure_analysis = false;
      opt.collect_metrics = true;
      opt.fault_plan = &run.plan;
      run.r = beff::run_beff(transport, run.nprocs, opt);
      if (verbose) log_cell_finish(what, t0);
      if (ck != nullptr) {
        ck->record_beff(task, run.r);
        maybe_kill(ck.get(), options.kill_after);
      }
    } else {
      // Paper Sec. 5.4: barrier + broadcast on 32 T3E PEs versus the
      // per-call cost of a small I/O access.
      const std::string what = "termination-check t3e, 32 procs";
      const double wall0 = verbose ? log_cell_start(what) : 0.0;
      obs::prof::Scope prof_scope("cell", what);
      auto m = machines::cray_t3e_900();
      parmsg::SimTransport transport(m.make_topology(32), m.costs);
      transport.run(32, [&](parmsg::Comm& c) {
        const double t0 = c.wtime();
        c.barrier();
        int flag = 0;
        c.bcast(&flag, sizeof flag, 0);
        if (c.rank() == 0) data.termination_check_seconds = c.wtime() - t0;
      });
      data.io_call_seconds = m.io->request_overhead;
      if (verbose) log_cell_finish(what, wall0);
    }
  });
  return data;
}

// ---------------------------------------------------------------------------
// Config hash and provenance
// ---------------------------------------------------------------------------

namespace {

std::string describe_config(Scope scope) {
  std::ostringstream os;
  os << "balbench-experiments/1 scope=" << scope_name(scope)
     << " seed=2001 repetitions=3 start_looplength=300"
     << " loop_target_time=0.00375 weights=25/25/50\n";
  for (const auto& b : beff_specs(scope)) {
    os << "beff " << b.key << " np=" << b.nprocs << " first=" << b.first
       << " table=" << b.in_table << '\n';
  }
  for (const auto& r : io_specs(scope)) {
    os << "beffio " << r.figure << ' ' << r.key << " np=" << r.nprocs
       << " T=" << r.scheduled_seconds << " cap=" << r.mpart_cap << '\n';
  }
  for (const auto& k : kernel_specs(scope)) {
    os << "kernels " << k.key << " np=" << k.nprocs << '\n';
  }
  for (const auto& f : fault_sweep_specs(scope)) {
    os << "faultsweep " << f.key << " np=" << f.nprocs
       << " plan=" << f.plan.describe() << '\n';
  }
  os << "micro termination-check t3e np=32\n";
  return os.str();
}

}  // namespace

std::string config_hash(Scope scope) {
  // util::fnv1a_hex uses the same FNV-1a 64-bit constants and 16-digit
  // hex form this function always produced, so hashes stamped into
  // committed records and EXPERIMENTS.md stay valid.
  return util::fnv1a_hex(describe_config(scope));
}

std::string config_hash(Scope scope, const scenario::Scenario* sc) {
  if (sc == nullptr) return config_hash(scope);
  // A scenario run's configuration IS the scenario: its canonical
  // describe() covers every machine parameter, cell, fault plan and
  // sweep point, so two scenarios hash equal iff they schedule
  // byte-identical work.
  return util::fnv1a_hex("balbench-scenario-experiments/1 scope=" +
                         std::string(scope_name(scope)) + "\n" +
                         sc->describe());
}

std::string git_revision() {
  FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[128];
  std::string out;
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  if (status != 0 || out.empty()) return "unknown";
  return out;
}

// ---------------------------------------------------------------------------
// JSON run record
// ---------------------------------------------------------------------------

void write_run_record(std::ostream& os, const ExperimentsData& data,
                      const std::string& cfg_hash, const std::string& git_rev) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("schema", "balbench-run-record/1");
  w.field("scope", scope_name(data.scope));
  // Present only for --scenario runs, so built-in records keep their
  // exact pre-scenario byte stream.
  if (!data.scenario.empty()) w.field("scenario", data.scenario);
  w.field("config_hash", cfg_hash);
  // Fault-plan header and per-run "status" fields exist only when a
  // plan was active, so fault-free records keep their exact pre-fault
  // byte stream (DESIGN.md Sec. 12.1).
  if (!data.faults.empty()) w.field("faults", data.faults);
  w.key("provenance").begin_object();
  w.field("generator", "balbench-report");
  w.field("git_rev", git_rev);
  w.end_object();

  w.key("beff").begin_array();
  for (const auto& b : data.beff) {
    w.begin_object();
    w.field("machine", b.key);
    w.field("system", b.display);
    w.field("nprocs", b.nprocs);
    w.field("lmax_bytes", b.r.lmax);
    w.field("b_eff_Bps", b.r.b_eff);
    w.field("per_proc_Bps", b.r.per_proc());
    w.field("b_eff_at_lmax_Bps", b.r.b_eff_at_lmax);
    w.field("per_proc_at_lmax_Bps", b.r.per_proc_at_lmax());
    w.field("per_proc_at_lmax_rings_Bps", b.r.per_proc_at_lmax_rings());
    w.field("benchmark_virtual_seconds", b.r.benchmark_seconds);
    write_status_fields(w, b.r.cell_status, b.r.cell_labels,
                        b.r.worst_outcome());
    if (b.first) {
      w.key("analysis").begin_object();
      w.field("pingpong_Bps", b.r.analysis.pingpong_bw);
      w.field("worst_cycle_Bps", b.r.analysis.worst_cycle_bw);
      w.field("bisection_paired_Bps", b.r.analysis.bisection_paired_bw);
      w.field("bisection_interleaved_Bps", b.r.analysis.bisection_interleaved_bw);
      w.end_object();
    }
    w.key("patterns").begin_array();
    for (const auto& p : b.r.patterns) {
      w.begin_object();
      w.field("name", p.name);
      w.field("kind", p.is_random ? "random" : "ring");
      w.field("avg_Bps", p.avg_bw);
      w.field("at_lmax_Bps", p.bw_at_lmax);
      w.end_object();
    }
    w.end_array();
    w.key("metrics");
    write_metrics(w, b.r.metrics);
    w.end_object();
  }
  w.end_array();

  w.key("beffio").begin_array();
  for (const auto& r : data.io) {
    w.begin_object();
    w.field("figure", r.figure);
    w.field("machine", r.key);
    w.field("nprocs", r.nprocs);
    w.field("scheduled_seconds", r.scheduled_seconds);
    w.field("mpart_bytes", r.r.mpart);
    w.field("segment_bytes", r.r.segment_bytes);
    w.field("b_eff_io_Bps", r.r.b_eff_io);
    w.field("benchmark_virtual_seconds", r.r.benchmark_seconds);
    write_status_fields(w, r.r.chain_status, r.r.chain_labels,
                        r.r.worst_outcome());
    w.key("access").begin_array();
    for (const auto& am : r.r.access) {
      w.begin_object();
      w.field("method", beffio::access_method_name(am.method));
      w.field("weighted_Bps", am.weighted_bandwidth());
      w.key("types").begin_array();
      for (int t = 0; t < beffio::kNumPatternTypes; ++t) {
        const auto& tr = am.types[static_cast<std::size_t>(t)];
        w.begin_object();
        w.field("type", t);
        w.field("bytes", tr.bytes);
        w.field("seconds", tr.seconds);
        w.field("Bps", tr.bandwidth());
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("metrics");
    write_metrics(w, r.r.metrics);
    w.end_object();
  }
  w.end_array();

  w.key("kernels").begin_array();
  for (const auto& k : data.kernels) write_kernel_run(w, k, data);
  w.end_array();

  w.key("fault_sweep").begin_array();
  for (const auto& f : data.fault_sweep) {
    w.begin_object();
    w.field("machine", f.key);
    w.field("system", f.display);
    w.field("nprocs", f.nprocs);
    w.field("link_rate", f.rate);
    w.field("faults", f.plan.describe());
    w.field("lmax_bytes", f.r.lmax);
    w.field("b_eff_Bps", f.r.b_eff);
    w.field("per_proc_Bps", f.r.per_proc());
    w.field("b_eff_at_lmax_Bps", f.r.b_eff_at_lmax);
    w.field("benchmark_virtual_seconds", f.r.benchmark_seconds);
    write_status_fields(w, f.r.cell_status, f.r.cell_labels,
                        f.r.worst_outcome());
    w.end_object();
  }
  w.end_array();

  w.key("micro").begin_object();
  w.field("termination_check_seconds", data.termination_check_seconds);
  w.field("io_call_seconds", data.io_call_seconds);
  w.end_object();
  w.end_object();
  os << '\n';
}

void write_kernel_record(std::ostream& os, const ExperimentsData& data,
                         const std::string& cfg_hash,
                         const std::string& git_rev) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("schema", "balbench-kernel-record/1");
  w.field("scope", scope_name(data.scope));
  w.field("config_hash", cfg_hash);
  w.key("provenance").begin_object();
  w.field("generator", "balbench-report");
  w.field("git_rev", git_rev);
  w.end_object();
  w.key("kernels").begin_array();
  for (const auto& k : data.kernels) write_kernel_run(w, k, data);
  w.end_array();
  w.end_object();
  os << '\n';
}

// ---------------------------------------------------------------------------
// EXPERIMENTS.md renderer
// ---------------------------------------------------------------------------

void render_experiments_md(std::ostream& os, const ExperimentsData& data,
                           const std::string& cfg_hash) {
  auto section_stamp = [&](const char* what) {
    os << "<!-- generated: " << what
       << " | balbench-report --scope " << scope_name(data.scope)
       << " --markdown EXPERIMENTS.md | config " << cfg_hash << " -->\n";
  };

  os << "# EXPERIMENTS — paper vs. measured (simulated)\n"
        "\n";
  section_stamp("whole document");
  os << "<!-- Do not edit measured numbers by hand: the doc_drift_guard\n"
        "     ctest re-runs the sweep and byte-compares this file. -->\n"
        "\n"
        "Every table and figure of the paper, the tool that regenerates it,\n"
        "and how our measured values compare.  All of our numbers come from\n"
        "the deterministic virtual-time simulation described in DESIGN.md; the\n"
        "success criterion is **shape** (who wins, by what factor, where the\n"
        "crossovers and saturation points lie), not absolute equality — the\n"
        "substrate is a simulator, not the authors' 1999-2000 testbeds.\n"
        "\n"
        "Regenerate everything with:\n"
        "\n"
        "```sh\n"
        "build/tools/balbench-report --scope doc --markdown EXPERIMENTS.md  # this file\n"
        "build/tools/balbench-report --scope doc --record beffrun.json     # JSON run record\n"
        "build/tools/balbench-report --trace trace.json --machine t3e --procs 64\n"
        "for b in build/bench/*; do $b; done    # ASCII tables/plots (≈4 min on 1 core)\n"
        "```\n"
        "\n"
        "Comparison markers are rule-generated per cell: ✓ = within 10 % of\n"
        "the paper's value, ≈ = within 50 %, otherwise the ratio is printed.\n"
        "\n";

  // ---- Table 1 ----------------------------------------------------------
  os << "## Table 1 — effective bandwidth results\n"
        "\n";
  section_stamp("Table 1");
  os << "Paper → measured (MByte/s):\n"
        "\n"
        "| System | procs | b_eff | b_eff/proc | b_eff at L_max /proc | "
        "ring-only /proc | ping-pong |\n"
        "|---|---|---|---|---|---|---|\n";
  for (const auto& b : data.beff) {
    if (!b.in_table) continue;
    std::string pingpong;
    if (!b.first || b.paper.pingpong == 0.0) {
      pingpong = "—";
    } else if (b.paper.pingpong < 0.0) {
      pingpong = "(empty)";
    } else {
      pingpong = cmp_cell(b.paper.pingpong, b.r.analysis.pingpong_bw);
    }
    os << "| " << b.display << " | " << b.nprocs << " | "
       << cmp_cell(b.paper.b_eff, b.r.b_eff) << " | "
       << cmp_cell(b.paper.per_proc, b.r.per_proc()) << " | "
       << cmp_cell(b.paper.at_lmax_per_proc, b.r.per_proc_at_lmax()) << " | "
       << cmp_cell(b.paper.ring_per_proc, b.r.per_proc_at_lmax_rings()) << " | "
       << pingpong << " |\n";
  }
  os << "\n";

  // Shape-check bullets, recomputed from the sweep.
  {
    std::vector<std::string> bullets;
    const BeffRun* t3e512 = find_beff(data, "t3e", 512);
    const BeffRun* t3e2 = find_beff(data, "t3e", 2);
    if (t3e512 != nullptr && t3e2 != nullptr) {
      double ring_min = 1e300, ring_max = 0.0;
      for (const auto& b : data.beff) {
        if (b.key != "t3e") continue;
        ring_min = std::min(ring_min, b.r.per_proc_at_lmax_rings());
        ring_max = std::max(ring_max, b.r.per_proc_at_lmax_rings());
      }
      bullets.push_back(
          "T3E ring-pattern per-process bandwidth is ~constant (" +
          mbps(ring_min) + "–" + mbps(ring_max) +
          ") from 2 to 512 PEs while the random patterns degrade with size "
          "— the paper's \"negative effect of random neighbor "
          "locations\".  Our torus contention gives " +
          mbps(t3e512->r.per_proc_at_lmax()) + " vs. the paper's 98 at 512 "
          "PEs.");
      bullets.push_back(
          "b_eff/proc declines with process count on the T3E (" +
          mbps(t3e2->r.per_proc()) + " → " + mbps(t3e512->r.per_proc()) +
          ") as in the paper (91 → 39); our decline is shallower "
          "(flow-level max-min routing is kinder than real dimension-order "
          "wormhole hotspots).");
    }
    const BeffRun* seq24 = find_beff(data, "sr8000", 24);
    const BeffRun* rr24 = find_beff(data, "sr8000rr", 24);
    if (seq24 != nullptr && rr24 != nullptr) {
      char overall[16], rings[16];
      std::snprintf(overall, sizeof overall, "%.1f",
                    seq24->r.b_eff / rr24->r.b_eff);
      std::snprintf(rings, sizeof rings, "%.1f",
                    seq24->r.rings_logavg_at_lmax / rr24->r.rings_logavg_at_lmax);
      bullets.push_back(
          std::string("SR 8000: sequential placement beats round-robin by ") +
          overall + "× overall and " + rings +
          "× on ring patterns; *random beats ring under round-robin* (" +
          mbps(rr24->r.random_logavg_at_lmax / 24) + " vs " +
          mbps(rr24->r.rings_logavg_at_lmax / 24) +
          " — the paper shows the same inversion, 115 vs 110).");
    }
    bullets.push_back(
        "Shared-memory systems land within ~10 % at L_max; their averaged "
        "values run high (our fixed per-call latency model is simpler than "
        "real vector-machine MPI behaviour at mid sizes).");
    if (t3e512 != nullptr && seq24 != nullptr) {
      char t3e_cup[16], sr_cup[16];
      std::snprintf(t3e_cup, sizeof t3e_cup, "%.1f",
                    t3e512->r.seconds_for_total_memory(t3e512->memory_per_proc));
      std::snprintf(sr_cup, sizeof sr_cup, "%.1f",
                    seq24->r.seconds_for_total_memory(seq24->memory_per_proc));
      const long long gb = std::llround(
          static_cast<double>(t3e512->memory_per_proc) * 512 /
          (1024.0 * 1024.0 * 1024.0));
      bullets.push_back("Coffee-cup rule (Sec. 2.2): T3E-512 moves its " +
                        std::to_string(gb) + " GB of memory in " + t3e_cup +
                        " s of simulated time (paper: 3.2 s); SR 8000-24 in " +
                        sr_cup + " s (paper: 13.6 s).");
    }
    if (!bullets.empty()) {
      os << "Shape checks that hold (asserted in `tests/integration` and\n"
            "`tests/beff/machine_sweep_test.cpp`):\n"
            "\n";
      for (const auto& b : bullets) os << wrap("* " + b, "  ") << "\n";
      os << "\n";
    }
  }
  os << "Systematic bias: our averaged b_eff runs 10–40 % above the paper "
        "because\n"
        "mid-size messages (8–256 kB) are modeled with a single latency +\n"
        "bandwidth knee, while real MPI stacks had additional protocol "
        "switches.\n"
        "All at-L_max and ping-pong columns are within ~10 %.\n"
        "\n";

  // ---- Figure 1 ---------------------------------------------------------
  {
    struct BalancePoint {
      std::string label;
      double balance;
    };
    const std::vector<std::tuple<const char*, int, const char*>> points = {
        {"sx4", 16, "SX-4"},   {"sx5", 4, "SX-5"},   {"hpv", 7, "HP-V"},
        {"sr2201", 16, "SR 2201"}, {"sv1", 15, "SV1"},
        {"sr8000", 24, "SR 8000"}, {"t3e", 256, "T3E"}};
    std::vector<BalancePoint> balances;
    for (const auto& [key, np, label] : points) {
      const BeffRun* b = find_beff(data, key, np);
      if (b == nullptr || b->rmax_gflops_per_proc <= 0.0) continue;
      balances.push_back(
          {label, b->r.b_eff / (b->rmax_gflops_per_proc * 1e9 * b->nprocs)});
    }
    if (!balances.empty()) {
      std::stable_sort(balances.begin(), balances.end(),
                       [](const BalancePoint& a, const BalancePoint& b) {
                         return a.balance > b.balance;
                       });
      os << "## Figure 1 — balance factor\n"
            "\n";
      section_stamp("Figure 1");
      std::string list;
      for (std::size_t i = 0; i < balances.size(); ++i) {
        char v[16];
        std::snprintf(v, sizeof v, "%.3f", balances[i].balance);
        if (i > 0) list += " > ";
        list += balances[i].label + " " + v;
      }
      os << wrap("Measured bytes/flop: " + list +
                     ".  Matches the paper's reading: the shared-memory "
                     "vector systems are several times better balanced than "
                     "the MPP/cluster systems.  (Fig. 1's absolute values are "
                     "not legible in the source text; the ordering and the "
                     "vector-vs-MPP gap are the reproduced claims.  R_max "
                     "values are published Linpack figures per processor.)",
                 "")
         << "\n\n";
    }
  }

  // ---- Table 2 / Figure 2 (static: asserted structurally in tests) ------
  os << "## Table 2 / Figure 2 — the pattern table "
        "(`bench/table2_patterns`)\n"
        "\n"
        "Exact reproduction: 43 pattern rows across 5 types, chunk sizes\n"
        "1 kB / 32 kB / 1 MB / M_PART with +8-byte non-wellformed variants,\n"
        "ΣU = 64, fill-up patterns in the segmented types, M_PART =\n"
        "max(2 MB, memory/128) (asserted in "
        "`tests/beffio/pattern_table_test.cpp`).\n"
        "\n";

  // ---- Figure 3 ---------------------------------------------------------
  {
    std::vector<int> procs;
    std::vector<std::pair<std::string, std::string>> machines_seen;
    for (const auto& r : data.io) {
      if (r.figure != "fig3") continue;
      if (std::find(procs.begin(), procs.end(), r.nprocs) == procs.end()) {
        procs.push_back(r.nprocs);
      }
      const auto entry = std::make_pair(r.key, r.display);
      if (std::find(machines_seen.begin(), machines_seen.end(), entry) ==
          machines_seen.end()) {
        machines_seen.push_back(entry);
      }
    }
    if (!procs.empty()) {
      os << "## Figure 3 — b_eff_io vs. process count\n"
            "\n";
      section_stamp("Figure 3");
      os << "Measured b_eff_io (T = 10 min):\n"
            "\n"
            "| procs |";
      for (int p : procs) os << ' ' << p << " |";
      os << "\n|---|";
      for (std::size_t i = 0; i < procs.size(); ++i) os << "---|";
      os << "\n";
      for (const auto& [key, display] : machines_seen) {
        os << "| " << display << " (MB/s) |";
        for (int p : procs) {
          const IoRun* r = find_io(data, "fig3", key, p);
          if (r == nullptr) {
            os << " — |";
          } else {
            os << ' ' << mbps(r->r.b_eff_io) << " |";
          }
        }
        os << "\n";
      }
      os << "\n"
            "* **T3E**: flat from 8 to 128 processes with the maximum at "
            "16–32 —\n"
            "  the paper's \"the I/O bandwidth is a global resource … "
            "maximum is\n"
            "  reached at 32 application processes, with little variation "
            "from 8 to\n"
            "  128\". ✓\n"
            "* **SP**: bandwidth tracks the client count (≈12 MB/s per "
            "node) until\n"
            "  the 20 VSD servers saturate around 64–128 nodes — "
            "\"on the IBM SP the\n"
            "  I/O bandwidth tracks the number of compute nodes until it\n"
            "  saturates\". ✓\n"
            "* Larger T does not increase the value (and reads get slightly "
            "slower\n"
            "  as files outgrow the cache) — the Sec. 5.4 observation "
            "that the\n"
            "  maximum tends to occur at T = 10 min "
            "(`bench/fig3_beffio_scaling`\n"
            "  sweeps T ∈ {10, 15, 30} min). ✓\n"
            "\n";
    }
  }

  // ---- Figure 4 ---------------------------------------------------------
  {
    const IoRun* sp64 = find_io(data, "fig4", "sp", 64);
    const IoRun* t3e64 = find_io(data, "fig4", "t3e", 64);
    if (sp64 != nullptr && t3e64 != nullptr) {
      os << "## Figure 4 — per-pattern detail\n"
            "\n";
      section_stamp("Figure 4");
      os << "Reproduced qualitative structure on all four systems (IBM SP 64, "
            "T3E\n"
            "64, SR 8000 24, SX-5 4 with reduced M_PART); the per-pattern "
            "curves\n"
            "are plotted by `bench/fig4_beffio_detail`:\n"
            "\n";
      using beffio::AccessMethod;
      const auto& sp_write =
          sp64->r.access[static_cast<std::size_t>(AccessMethod::InitialWrite)];
      const auto& t3e_write =
          t3e64->r.access[static_cast<std::size_t>(AccessMethod::InitialWrite)];
      const double sp_scatter_1k = pattern_bw(sp_write, 0, 1024);
      const double sp_noncoll_lo =
          std::min(pattern_bw(sp_write, 1, 1024), pattern_bw(sp_write, 2, 1024));
      const double sp_noncoll_hi =
          std::max(pattern_bw(sp_write, 1, 1024), pattern_bw(sp_write, 2, 1024));
      os << wrap("* **Scatter type 0 is the best pattern type at small disk "
                 "chunks on every platform** — two-phase collective "
                 "buffering turns 1 kB disk chunks into large aligned "
                 "accesses, so its curve is flat in l (SP: " +
                     mbps_small(sp_scatter_1k) + " MB/s at 1 kB vs " +
                     mbps_small(sp_noncoll_lo) + "–" +
                     mbps_small(sp_noncoll_hi) +
                     " MB/s for the non-collective types). ✓",
                 "  ")
         << "\n";
      const double wf_1k = pattern_bw(t3e_write, 2, 1024);
      const double nwf_1k = pattern_bw(t3e_write, 2, 1024 + 8);
      const double wf_32k = pattern_bw(t3e_write, 2, 32768);
      const double nwf_32k = pattern_bw(t3e_write, 2, 32768 + 8);
      const long long gap =
          nwf_1k > 0.0 ? std::llround(wf_1k / nwf_1k) : 0;
      os << wrap("* **Non-wellformed (+8 byte) chunks are markedly slower**, "
                 "most visibly on the T3E's non-collective types (1 kB: " +
                     mbps_small(wf_1k) + " → " + mbps_small(nwf_1k) +
                     " MB/s, an ~" + std::to_string(gap) + "× gap; "
                     "32 kB: " + mbps_small(wf_32k) + " → " +
                     mbps_small(nwf_32k) + "; it narrows toward 1 MB+8), via "
                     "per-chunk unaligned handling and partial-block RMW "
                     "— \"especially on the T3E, there are huge "
                     "differences\". ✓",
                 "  ")
         << "\n";
      const double t3_bw = sp_write.types[3].bandwidth();
      const double t4_bw = sp_write.types[4].bandwidth();
      const long long seg_ratio = t4_bw > 0.0 ? std::llround(t3_bw / t4_bw) : 0;
      os << wrap("* **Type 4 (segmented collective) on the SP prototype is "
                 "~" + std::to_string(seg_ratio) +
                     "× worse than type 3** at every chunk size "
                     "(serialized collective path); on T3E/SR 8000/SX-5, "
                     "whose libraries optimize it, types 3 and 4 coincide "
                     "— exactly the paper's contrast. ✓",
                 "  ")
         << "\n";
      os << "* Shared-pointer type 1 trails the individual types at small "
            "chunks\n"
            "  (token-serialized pointer updates). ✓\n"
            "* The SX-5 plots show the cache-bypass behaviour for requests "
            "≥ 1 MB\n"
            "  (large chunks run at raw RAID speed, small cached rewrites "
            "faster). ✓\n"
            "\n";
    }
  }

  // ---- Figure 5 ---------------------------------------------------------
  {
    struct Best {
      std::string display;
      double bw = 0.0;
      int nprocs = 0;
    };
    std::vector<Best> bests;
    for (const auto& r : data.io) {
      if (r.figure != "fig5") continue;
      auto it = std::find_if(bests.begin(), bests.end(), [&](const Best& b) {
        return b.display == r.display;
      });
      if (it == bests.end()) {
        bests.push_back({r.display, r.r.b_eff_io, r.nprocs});
      } else if (r.r.b_eff_io > it->bw) {
        it->bw = r.r.b_eff_io;
        it->nprocs = r.nprocs;
      }
    }
    if (!bests.empty()) {
      std::stable_sort(bests.begin(), bests.end(),
                       [](const Best& a, const Best& b) { return a.bw > b.bw; });
      os << "## Figure 5 — final comparison\n"
            "\n";
      section_stamp("Figure 5");
      std::string list;
      for (std::size_t i = 0; i < bests.size(); ++i) {
        if (i > 0) {
          // "≈" when two systems are within 10 % of each other.
          list += bests[i].bw >= 0.9 * bests[i - 1].bw ? " ≈ " : " > ";
        }
        list += bests[i].display + " " + mbps(bests[i].bw) +
                (i == 0 ? " MB/s (at " : " (") +
                std::to_string(bests[i].nprocs) + ")";
      }
      os << wrap("Measured best-partition b_eff_io at T = 15 min: " + list +
                     ".  The paper's figure likewise has the SP on top at "
                     "large partitions, T3E/SR 8000 mid-field saturating at "
                     "small partitions, and the 4-processor SX-5 lowest in "
                     "aggregate.  Weighting checks (write/rewrite/read = "
                     "25/25/50, scatter double) are unit-tested.",
                 "")
         << "\n\n";
    }
  }

  // ---- Balance characterization ----------------------------------------
  // Marker-delimited like the PERF HISTORY section so external tools
  // can extract or splice it without re-running the sweep.
  if (!data.kernels.empty()) {
    os << "<!-- BEGIN BALANCE CHARACTERIZATION -->\n"
          "## Balance characterization — compute vs. communication vs. "
          "I/O\n"
          "\n";
    section_stamp("balance characterization");
    os << "The compute side comes from the simulated HPCC-style kernel "
          "suite\n"
          "(`core/kernels`, DESIGN.md §14): **R_max** is the *measured* "
          "GEMM/LU\n"
          "rate under each machine's roofline model (compared against the\n"
          "published Linpack value), **STREAM** is the aggregate triad "
          "rate.\n"
          "The quotient columns are the paper's balance factors "
          "generalized to\n"
          "I/O and memory; exact formulas, units and matching rules: "
          "docs/METRICS.md.\n"
          "b_eff uses the same (machine, procs) partition as the kernel "
          "suite;\n"
          "b_eff_io is the machine's best Fig. 5 (fallback Fig. 3) value.\n"
          "\n"
          "| System | procs | R_max GFlop/s (paper → meas) | "
          "STREAM triad MB/s | GUP/s | b_eff/R_max B/flop | "
          "b_eff_io/R_max B/flop | STREAM/R_max B/flop |\n"
          "|---|---|---|---|---|---|---|---|\n";
    for (const auto& k : data.kernels) {
      const double rmax = k.r.rmax_flops();
      const double paper_rmax = k.rmax_gflops_per_proc * 1e9 * k.nprocs;
      std::string rmax_cell = gflops(rmax);
      if (paper_rmax > 0.0) {
        rmax_cell = gflops(paper_rmax) + " → " + gflops(rmax) +
                    ratio_marker(paper_rmax, rmax);
      }
      const kernels::KernelResult* gup =
          k.r.find(kernels::KernelId::RandomAccess);
      char gup_buf[32];
      std::snprintf(gup_buf, sizeof gup_buf, "%.3g",
                    gup != nullptr ? gup->value / 1e9 : 0.0);
      const BeffRun* b = find_beff(data, k.key, k.nprocs);
      const IoRun* io = best_io(data, k.key);
      os << "| " << k.display << " | " << k.nprocs << " | " << rmax_cell
         << " | " << mbps(k.r.stream_triad_bps()) << " | " << gup_buf
         << " | " << (b != nullptr ? bpf(b->r.b_eff / rmax) : "—") << " | "
         << (io != nullptr ? bpf(io->r.b_eff_io / rmax) : "—") << " | "
         << bpf(k.r.stream_triad_bps() / rmax) << " |\n";
    }
    os << "\n";
    // Computed reading of the table: which architectures are balanced.
    {
      const KernelRun* best_k = nullptr;
      const KernelRun* worst_k = nullptr;
      double best_v = 0.0, worst_v = 1e300;
      for (const auto& k : data.kernels) {
        const BeffRun* b = find_beff(data, k.key, k.nprocs);
        if (b == nullptr) continue;
        const double v = b->r.b_eff / k.r.rmax_flops();
        if (v > best_v) { best_v = v; best_k = &k; }
        if (v < worst_v) { worst_v = v; worst_k = &k; }
      }
      if (best_k != nullptr && worst_k != nullptr && best_k != worst_k) {
        char ratio[16];
        std::snprintf(ratio, sizeof ratio, "%.0f", best_v / worst_v);
        os << wrap("* b_eff/R_max spans " + std::string(ratio) +
                       "× across the field: " + best_k->display + " (" +
                       bpf(best_v) + " B/flop) is the best-balanced "
                       "communication/compute pairing, " + worst_k->display +
                       " (" + bpf(worst_v) + ") the most compute-heavy — "
                       "the paper's Fig. 1 reading, now derived from a "
                       "*measured* R_max instead of the published Linpack "
                       "number.",
                   "  ")
           << "\n";
      }
      os << wrap("* Every machine's b_eff_io/R_max is orders of magnitude "
                 "below its b_eff/R_max: disks, not networks, are the "
                 "scarce resource per flop — the imbalance the paper's "
                 "Sec. 5 argues b_eff_io exposes.",
                 "  ")
         << "\n";
      os << wrap("* STREAM/R_max separates the vector machines (whole "
                 "bytes per flop) from the cache machines (fractions) — "
                 "the memory-bandwidth side of the balance argument "
                 "(RZBENCH's machine-balance metric, PAPERS.md).",
                 "  ")
         << "\n";
    }
    os << "<!-- END BALANCE CHARACTERIZATION -->\n\n";
  }

  // ---- Fault-scenario sweeps -------------------------------------------
  // Marker-delimited like the balance section; present whenever the
  // sweep (built-in or scenario-defined) scheduled fault points.
  if (!data.fault_sweep.empty()) {
    os << "<!-- BEGIN FAULT-SCENARIO SWEEPS -->\n"
          "## Fault-scenario sweeps — b_eff degradation under injected "
          "link faults\n"
          "\n";
    section_stamp("fault-scenario sweeps");
    os << wrap("Each point re-runs the full b_eff pattern mix (same rings, "
               "random neighbourhoods, message sizes and averaging rule) "
               "under a deterministic fault plan: every message is degraded "
               "to " + num_str(data.fault_sweep.front().plan.degrade_factor *
                               100.0) +
                   " % of its bandwidth with the given per-message "
                   "probability (robust/fault.hpp).  The plan's seed and "
                   "schedule are part of the config hash, so this section "
                   "is byte-identical for any --jobs N.  Rate 0 is the "
                   "clean baseline the chart normalizes against.  "
                   "Scenario files (docs/SCENARIOS.md) can redefine the "
                   "swept machine, rates, degrade factor and fault window.",
               "")
       << "\n\n"
          "| System | procs | link fault rate | b_eff MB/s | vs clean | "
          "status |\n"
          "|---|---|---|---|---|---|\n";
    // Grouped by (machine, partition), insertion order preserved; the
    // clean baseline of a group is its rate-0 point.
    struct FsGroup {
      std::string key;
      std::string display;
      int nprocs = 0;
      std::vector<const FaultSweepRun*> runs;
      double clean = 0.0;
    };
    std::vector<FsGroup> groups;
    for (const auto& f : data.fault_sweep) {
      FsGroup* g = nullptr;
      for (auto& existing : groups) {
        if (existing.key == f.key && existing.nprocs == f.nprocs) {
          g = &existing;
          break;
        }
      }
      if (g == nullptr) {
        groups.push_back({f.key, f.display, f.nprocs, {}, 0.0});
        g = &groups.back();
      }
      g->runs.push_back(&f);
      if (f.rate == 0.0) g->clean = f.r.b_eff;
    }
    for (const auto& g : groups) {
      for (const FaultSweepRun* f : g.runs) {
        std::string vs = "—";
        if (g.clean > 0.0) {
          char pct[16];
          std::snprintf(pct, sizeof pct, "%.0f %%",
                        100.0 * f->r.b_eff / g.clean);
          vs = pct;
        }
        os << "| " << g.display << " | " << g.nprocs << " | "
           << num_str(f->rate) << " | " << mbps(f->r.b_eff) << " | " << vs
           << " | "
           << (f->r.cell_status.empty()
                   ? "ok"
                   : robust::outcome_name(f->r.worst_outcome()))
           << " |\n";
      }
    }
    os << "\n";
    // Degradation chart: one series per (machine, partition) over the
    // union of swept rates (NaN where a group skipped a rate).
    {
      std::vector<double> rates;
      for (const auto& f : data.fault_sweep) {
        if (std::find(rates.begin(), rates.end(), f.rate) == rates.end()) {
          rates.push_back(f.rate);
        }
      }
      std::vector<std::string> labels;
      labels.reserve(rates.size());
      for (double r : rates) labels.push_back(num_str(r));
      util::AsciiPlot::Options popt;
      popt.width = 60;
      popt.height = 14;
      popt.y_label = "MB/s";
      popt.title = "b_eff vs injected link fault rate";
      util::AsciiPlot plot(std::move(labels), popt);
      const char markers[] = "o*x+#@";
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        util::Series s;
        s.name = groups[gi].display + " (" +
                 std::to_string(groups[gi].nprocs) + ")";
        s.marker = markers[gi % (sizeof markers - 1)];
        s.values.assign(rates.size(),
                        std::numeric_limits<double>::quiet_NaN());
        for (const FaultSweepRun* f : groups[gi].runs) {
          for (std::size_t ri = 0; ri < rates.size(); ++ri) {
            if (rates[ri] == f->rate) {
              s.values[ri] = f->r.b_eff / kMiB;
              break;
            }
          }
        }
        plot.add_series(std::move(s));
      }
      os << "```\n" << plot.to_string() << "```\n\n";
    }
    // Computed reading of the curve: clean vs. the highest swept rate.
    for (const auto& g : groups) {
      if (g.runs.size() < 2 || g.clean <= 0.0) continue;
      const FaultSweepRun* worst = g.runs.front();
      for (const FaultSweepRun* f : g.runs) {
        if (f->rate > worst->rate) worst = f;
      }
      if (worst->rate == 0.0) continue;
      char pct[16];
      std::snprintf(pct, sizeof pct, "%.0f",
                    100.0 * worst->r.b_eff / g.clean);
      os << wrap("* " + g.display + " (" + std::to_string(g.nprocs) +
                     " procs): at link fault rate " + num_str(worst->rate) +
                     ", b_eff is " + mbps(worst->r.b_eff) + " MB/s = " + pct +
                     " % of clean — degradation is milder than the raw "
                     "rate because only the touched messages stretch and "
                     "the logarithmic averaging over message sizes dilutes "
                     "per-message loss.",
                 "  ")
         << "\n";
    }
    os << "<!-- END FAULT-SCENARIO SWEEPS -->\n\n";
  }

  // ---- Micro ------------------------------------------------------------
  if (data.termination_check_seconds > 0.0) {
    os << "## Sec. 2.2 / 5.4 side results\n"
          "\n";
    section_stamp("side results");
    char check_us[16], io_us[16];
    std::snprintf(check_us, sizeof check_us, "%.0f",
                  data.termination_check_seconds * 1e6);
    std::snprintf(io_us, sizeof io_us, "%.0f", data.io_call_seconds * 1e6);
    os << wrap("* Termination-check cost: simulated barrier + bcast on 32 "
               "T3E PEs = " + std::string(check_us) +
                   " µs vs. the paper's ~60 µs; a 1 kB I/O call "
                   "costs " + io_us + " µs (paper: 250 µs) — "
                   "reproducing the conclusion that the check is *not* 10× "
                   "faster than the access (`bench/micro_core`, "
                   "`BM_TerminationCheckVirtualCost`). ✓",
               "  ")
       << "\n";
    os << "* b_eff measurement time: seconds to ~1 simulated minute per "
          "system --\n"
          "  below the paper's 3-5 min wall budget because the deterministic\n"
          "  simulator deduplicates the 3 repetitions and pays no OS noise;\n"
          "  b_eff_io spends the scheduled T of 10-30 min per partition. "
          "✓\n"
          "* L_SEG segment rounding to 1 MB and the 2 GB/nprocs cap are\n"
          "  implemented and unit-tested.\n"
          "\n";
  }

  // ---- Static closing sections -----------------------------------------
  os << "## Extensions beyond the released benchmarks (paper Secs. 5.4/6)\n"
        "\n"
        "| Paper item | Where |\n"
        "|---|---|\n"
        "| geometric-series termination factors (proposed in 5.4) | "
        "`beffio::TerminationMode::GeometricSeries`; test shows it lifts "
        "small-chunk bandwidth vs. per-iteration checks |\n"
        "| random I/O access patterns (Sec. 6 \"should examine\") | "
        "`BeffIoOptions::include_random_type`, reported separately, never "
        "averaged |\n"
        "| MPI_Info-style per-pattern hints (Sec. 5.3 \"future release\") | "
        "`pario::Hints::two_phase` |\n"
        "| SKaMPI comparison-page output (Sec. 6) | `core/report`: CSV + "
        "key=value summaries + `examples/compare_machines` |\n"
        "| machine-readable run records + metrics (Sec. 6) | "
        "`balbench-report --record`: JSON with per-cell bandwidths and "
        "merged `obs` metric snapshots (DESIGN.md §10.4) |\n"
        "| Chrome-trace timelines | `balbench-report --trace`: virtual-time "
        "spans per rank, loadable in Perfetto (DESIGN.md §10.3) |\n"
        "| Top Clusters list (Sec. 6) | `bench/topclusters_list` |\n"
        "| averaging-rule ablations | `bench/ablation_averaging`: logavg vs "
        "arithmetic (+1 %), rings-only (+10 %), L_max-only (+125 %), "
        "single-method (−15 % for Sendrecv) |\n"
        "\n"
        "## Parameter provenance\n"
        "\n"
        "From the paper/its references: ping-pong bandwidths "
        "(330/776/954/994),\n"
        "memory sizes via the L_max column, SMP widths (8-way SR 8000, "
        "4-way\n"
        "SP nodes), I/O server counts (10 striped RAIDs on GigaRing, 20 "
        "VSDs,\n"
        "4 RAID-3 arrays), SFS 4 MB cluster size + 2 GB cache + 1 MB bypass\n"
        "rule, GPFS 690/950 MB/s write/read maxima, the unoptimized "
        "segmented\n"
        "collective on the SP prototype, R_max-class Linpack per-processor\n"
        "values.  Calibrated against Table 1's shape: latencies, per-call\n"
        "overheads, torus link bandwidth (360 MB/s shared bidirectional),\n"
        "NIC duplex factor 1.25, SMP bus widths, disk seek times, "
        "client-link\n"
        "bandwidths.  Every calibrated value lives in\n"
        "`src/machines/machines.cpp` with a comment naming what it was fit "
        "to.\n"
        "\n"
        "## Known deviations\n"
        "\n"
        "1. Averaged b_eff values run 10–40 % high (single-knee size "
        "curve);\n"
        "   at-L_max values are within ~10 %.\n"
        "2. T3E per-process decline with P is shallower (flow-level max-min "
        "vs.\n"
        "   real wormhole routing hotspots).\n"
        "3. T3E b_eff_io absolute level (~200 MB/s of the 300 MB/s peak) is\n"
        "   likely above the paper's (unreadable) Fig. 3 values, which the "
        "text\n"
        "   implies were further reduced by the pattern mix; the "
        "flatness-in-P\n"
        "   and max-at-16–32 shape is reproduced.\n"
        "4. b_eff_io batches its time-driven loops (DESIGN.md Sec. 6); "
        "per-call\n"
        "   costs are charged, but intra-loop pipelining across ranks is\n"
        "   approximated by the max-min fluid model.\n"
        "\n"
        "## Wall-clock of the regeneration sweep (`--jobs`)\n"
        "\n"
        "The parallel sweep scheduler (DESIGN.md §9) makes `--jobs N` a "
        "pure\n"
        "wall-clock knob: every number above is byte-identical for every "
        "value\n"
        "(enforced by the `doc_drift_guard` ctest and the --jobs 1/2/4\n"
        "byte-compares in `tests/report/run_record_test.cpp`).  Full bench\n"
        "sweep (all nine table/figure + analysis binaries, full fidelity,\n"
        "serially one binary after another), measured on this container:\n"
        "\n"
        "| setting | wall-clock |\n"
        "|---|---|\n"
        "| `--jobs 1` | 167.4 s |\n"
        "| `--jobs 4` | 178.7 s |\n"
        "\n"
        "This container exposes **one** CPU core (`nproc` = 1, affinity "
        "pinned\n"
        "to core 0), so the honestly measurable \"speedup\" here is 0.94× "
        "—\n"
        "extra worker threads cannot beat one core, and oversubscribing it\n"
        "costs ~7 % in scheduling overhead (which is why `--jobs 1` stays "
        "the\n"
        "default).  On a multi-core host the\n"
        "sweep scales with cores until the largest single cell dominates: "
        "the\n"
        "512-process T3E partition of `table1_beff` is a single sequential\n"
        "simulation session and bounds the critical path (Amdahl), which is "
        "why\n"
        "the cell decomposition stops at (pattern, method) granularity "
        "rather\n"
        "than splitting message sizes (looplength adaptation chains through\n"
        "them).\n"
        "\n"
        "### 512-process cells before/after the incremental DES core\n"
        "\n"
        "The incremental flow solver + indexed event queue + pooled fiber\n"
        "stacks (docs/SIMULATOR.md) were introduced against a committed\n"
        "`balbench-perf` baseline of the same 512-process sweep cells on "
        "this\n"
        "container (`--repeat 5`, medians with bootstrap 95 % CIs):\n"
        "\n"
        "| cell | before | after |\n"
        "|---|---|---|\n"
        "| `sweep.t3e512.random` | 2.514 s  CI [2.487, 2.543] | 1.855 s  CI "
        "[1.826, 1.870] |\n"
        "| `sweep.t3e512.construct` | 6.2 ms  CI [4.8, 13.0] | 4.1 ms  CI "
        "[3.9, 4.2] |\n"
        "| `sweep.t3e512.ring` | 6.9 ms  CI [6.6, 8.1] | 7.7 ms  CI [7.5, "
        "7.9] |\n"
        "\n"
        "The random-pattern cell — 512 ranks, link-disjoint components\n"
        "dominating the active flow set — is CI-separated (after's upper "
        "bound\n"
        "1.870 s below before's lower bound 2.487 s, a 1.36× speedup).  "
        "The\n"
        "ring cell is the adversarial case (one globally coupled "
        "component,\n"
        "every resolve takes the full path) and stays within noise of the "
        "old\n"
        "full-only solver.  These `sweep.t3e512.*` cells are recorded in\n"
        "`BENCH_PERF.json` and gated by the history drift check, so a\n"
        "regression in the incremental path fails CI rather than silently\n"
        "re-inflating the critical path above.\n";
}

void render_experiments_md(std::ostream& os, const ExperimentsData& data,
                           const std::string& cfg_hash,
                           const std::string& trend_section) {
  render_experiments_md(os, data, cfg_hash);
  if (!trend_section.empty()) os << '\n' << trend_section;
}

}  // namespace balbench::report
