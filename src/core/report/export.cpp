#include "core/report/export.hpp"

#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/table.hpp"

namespace balbench::report {

namespace {

/// CSV-quote a field (the machine names contain spaces and slashes).
std::string q(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void write_beff_csv(std::ostream& os, const std::string& machine,
                    const beff::BeffResult& r) {
  os << "machine,nprocs,pattern,kind,size_bytes,method,bandwidth_Bps\n";
  for (const auto& pm : r.patterns) {
    for (const auto& sm : pm.sizes) {
      for (int m = 0; m < beff::kNumMethods; ++m) {
        os << q(machine) << ',' << r.nprocs << ',' << q(pm.name) << ','
           << (pm.is_random ? "random" : "ring") << ',' << sm.size << ','
           << beff::method_name(static_cast<beff::Method>(m)) << ','
           << sm.method_bw[static_cast<std::size_t>(m)] << '\n';
      }
    }
  }
}

void write_beffio_csv(std::ostream& os, const std::string& machine,
                      const beffio::BeffIoResult& r) {
  os << "machine,nprocs,access,type,pattern_no,chunk_l,mem_L,wellformed,"
        "calls,bytes,seconds,bandwidth_Bps\n";
  for (const auto& am : r.access) {
    for (const auto& tr : am.types) {
      for (const auto& pr : tr.patterns) {
        os << q(machine) << ',' << r.nprocs << ','
           << beffio::access_method_name(am.method) << ','
           << static_cast<int>(tr.type) << ',' << pr.pattern.number << ','
           << pr.pattern.l << ',' << pr.pattern.L << ','
           << (pr.pattern.wellformed() ? 1 : 0) << ',' << pr.calls << ','
           << pr.bytes << ',' << pr.seconds << ',' << pr.bandwidth() << '\n';
      }
    }
  }
}

void write_beff_summary(std::ostream& os, const std::string& machine,
                        const beff::BeffResult& r) {
  // Round-trip precision: the summary is machine-readable.
  const auto saved = os.precision(std::numeric_limits<double>::max_digits10);
  os << "# b_eff summary for " << machine << "\n";
  os << "nprocs=" << r.nprocs << "\n";
  os << "lmax_bytes=" << r.lmax << "\n";
  os << "b_eff_Bps=" << r.b_eff << "\n";
  os << "b_eff_per_proc_Bps=" << r.per_proc() << "\n";
  os << "b_eff_at_lmax_Bps=" << r.b_eff_at_lmax << "\n";
  os << "rings_logavg_Bps=" << r.rings_logavg << "\n";
  os << "random_logavg_Bps=" << r.random_logavg << "\n";
  os << "pingpong_Bps=" << r.analysis.pingpong_bw << "\n";
  os << "benchmark_seconds=" << r.benchmark_seconds << "\n";
  os.precision(saved);
}

void write_beffio_summary(std::ostream& os, const std::string& machine,
                          const beffio::BeffIoResult& r) {
  const auto saved = os.precision(std::numeric_limits<double>::max_digits10);
  os << "# b_eff_io summary for " << machine << "\n";
  os << "nprocs=" << r.nprocs << "\n";
  os << "scheduled_seconds=" << r.scheduled_time << "\n";
  os << "mpart_bytes=" << r.mpart << "\n";
  os << "b_eff_io_Bps=" << r.b_eff_io << "\n";
  os << "write_Bps=" << r.write().weighted_bandwidth() << "\n";
  os << "rewrite_Bps=" << r.rewrite().weighted_bandwidth() << "\n";
  os << "read_Bps=" << r.read().weighted_bandwidth() << "\n";
  for (const auto& tr : r.write().types) {
    os << "write_type" << static_cast<int>(tr.type) << "_Bps="
       << tr.bandwidth() << "\n";
  }
  os << "segment_bytes=" << r.segment_bytes << "\n";
  os.precision(saved);
}

std::map<std::string, double> parse_summary(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    try {
      out[line.substr(0, eq)] = std::stod(line.substr(eq + 1));
    } catch (const std::exception&) {
      // Non-numeric values are skipped; the summary format is numeric
      // by construction.
    }
  }
  return out;
}

int compare_summaries(std::ostream& os, const std::string& name_a,
                      const std::map<std::string, double>& a,
                      const std::string& name_b,
                      const std::map<std::string, double>& b) {
  util::Table t({"key", name_a, name_b, "ratio b/a"});
  int compared = 0;
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it == b.end()) continue;
    const double vb = it->second;
    t.add_row({key, util::fmt(va, 3), util::fmt(vb, 3),
               va != 0.0 ? util::fmt(vb / va, 3) : "-"});
    ++compared;
  }
  t.render(os);
  return compared;
}

}  // namespace balbench::report
