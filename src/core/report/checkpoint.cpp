#include "core/report/checkpoint.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/atomic_write.hpp"

namespace balbench::report {

namespace {

// JsonValue stores every number as double; all journal integers are
// simulated counts far below 2^53, where this conversion is exact.
std::int64_t as_i64(const obs::JsonValue& v) {
  return std::llround(v.as_number());
}
std::uint64_t as_u64(const obs::JsonValue& v) {
  return static_cast<std::uint64_t>(std::llround(v.as_number()));
}
int as_int(const obs::JsonValue& v) {
  return static_cast<int>(std::llround(v.as_number()));
}

void write_metrics(obs::JsonWriter& w, const obs::MetricsSnapshot& m) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [k, v] : m.counters) w.field(k, v);
  w.end_object();
  w.key("sums").begin_object();
  for (const auto& [k, v] : m.sums) w.field(k, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [k, v] : m.gauges) w.field(k, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [k, h] : m.histograms) {
    w.key(k).begin_object();
    w.field("count", h.count).field("sum", h.sum).field("max", h.max);
    w.key("buckets").begin_array();
    for (const auto& [index, count] : h.buckets) {
      w.begin_array().value(index).value(count).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

obs::MetricsSnapshot read_metrics(const obs::JsonValue& v) {
  obs::MetricsSnapshot m;
  for (const auto& [k, e] : v.at("counters").as_object()) {
    m.counters[k] = as_u64(e);
  }
  for (const auto& [k, e] : v.at("sums").as_object()) m.sums[k] = e.as_number();
  for (const auto& [k, e] : v.at("gauges").as_object()) {
    m.gauges[k] = e.as_number();
  }
  for (const auto& [k, e] : v.at("histograms").as_object()) {
    obs::HistogramData h;
    h.count = as_u64(e.at("count"));
    h.sum = e.at("sum").as_number();
    h.max = e.at("max").as_number();
    for (const auto& b : e.at("buckets").as_array()) {
      const auto& pair = b.as_array();
      h.buckets.emplace_back(as_int(pair.at(0)), as_u64(pair.at(1)));
    }
    m.histograms[k] = std::move(h);
  }
  return m;
}

robust::Outcome outcome_from_name(const std::string& s) {
  if (s == "ok") return robust::Outcome::Ok;
  if (s == "degraded") return robust::Outcome::Degraded;
  if (s == "failed") return robust::Outcome::Failed;
  throw std::runtime_error("checkpoint: unknown outcome '" + s + "'");
}

void write_status(obs::JsonWriter& w,
                  const std::vector<robust::CellStatus>& statuses) {
  w.begin_array();
  for (const auto& s : statuses) {
    w.begin_object();
    w.field("outcome", robust::outcome_name(s.outcome));
    w.field("attempts", s.attempts);
    w.field("backoff_s", s.backoff_s);
    w.field("error", s.error);
    w.end_object();
  }
  w.end_array();
}

std::vector<robust::CellStatus> read_status(const obs::JsonValue& v) {
  std::vector<robust::CellStatus> out;
  for (const auto& e : v.as_array()) {
    robust::CellStatus s;
    s.outcome = outcome_from_name(e.at("outcome").as_string());
    s.attempts = as_int(e.at("attempts"));
    s.backoff_s = e.at("backoff_s").as_number();
    s.error = e.at("error").as_string();
    out.push_back(std::move(s));
  }
  return out;
}

void write_strings(obs::JsonWriter& w, const std::vector<std::string>& v) {
  w.begin_array();
  for (const auto& s : v) w.value(s);
  w.end_array();
}

std::vector<std::string> read_strings(const obs::JsonValue& v) {
  std::vector<std::string> out;
  for (const auto& e : v.as_array()) out.push_back(e.as_string());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// b_eff result round-trip
// ---------------------------------------------------------------------------

void write_beff_result(obs::JsonWriter& w, const beff::BeffResult& r) {
  w.begin_object();
  w.field("kind", "beff");
  w.field("nprocs", r.nprocs);
  w.field("lmax", r.lmax);
  w.key("sizes").begin_array();
  for (const auto s : r.sizes) w.value(s);
  w.end_array();
  w.key("patterns").begin_array();
  for (const auto& p : r.patterns) {
    w.begin_object();
    w.field("name", p.name);
    w.field("is_random", p.is_random);
    w.key("sizes").begin_array();
    for (const auto& s : p.sizes) {
      w.begin_object();
      w.field("size", s.size);
      w.key("method_bw").begin_array();
      for (const double b : s.method_bw) w.value(b);
      w.end_array();
      w.field("best_bw", s.best_bw);
      w.field("looplength", s.looplength);
      w.end_object();
    }
    w.end_array();
    w.field("avg_bw", p.avg_bw);
    w.field("bw_at_lmax", p.bw_at_lmax);
    w.end_object();
  }
  w.end_array();
  w.field("b_eff", r.b_eff);
  w.field("rings_logavg", r.rings_logavg);
  w.field("random_logavg", r.random_logavg);
  w.field("b_eff_at_lmax", r.b_eff_at_lmax);
  w.field("rings_logavg_at_lmax", r.rings_logavg_at_lmax);
  w.field("random_logavg_at_lmax", r.random_logavg_at_lmax);
  w.key("analysis").begin_object();
  w.field("pingpong_bw", r.analysis.pingpong_bw);
  w.field("worst_cycle_bw", r.analysis.worst_cycle_bw);
  w.field("bisection_paired_bw", r.analysis.bisection_paired_bw);
  w.field("bisection_interleaved_bw", r.analysis.bisection_interleaved_bw);
  w.key("cart2d_dims").begin_array();
  for (const int d : r.analysis.cart2d_dims) w.value(d);
  w.end_array();
  w.key("cart2d_per_dim_bw").begin_array();
  for (const double b : r.analysis.cart2d_per_dim_bw) w.value(b);
  w.end_array();
  w.field("cart2d_combined_bw", r.analysis.cart2d_combined_bw);
  w.key("cart3d_dims").begin_array();
  for (const int d : r.analysis.cart3d_dims) w.value(d);
  w.end_array();
  w.key("cart3d_per_dim_bw").begin_array();
  for (const double b : r.analysis.cart3d_per_dim_bw) w.value(b);
  w.end_array();
  w.field("cart3d_combined_bw", r.analysis.cart3d_combined_bw);
  w.end_object();
  w.field("benchmark_seconds", r.benchmark_seconds);
  w.key("metrics");
  write_metrics(w, r.metrics);
  w.key("cell_status");
  write_status(w, r.cell_status);
  w.key("cell_labels");
  write_strings(w, r.cell_labels);
  w.end_object();
}

beff::BeffResult read_beff_result(const obs::JsonValue& v) {
  beff::BeffResult r;
  r.nprocs = as_int(v.at("nprocs"));
  r.lmax = as_i64(v.at("lmax"));
  for (const auto& e : v.at("sizes").as_array()) r.sizes.push_back(as_i64(e));
  for (const auto& pe : v.at("patterns").as_array()) {
    beff::PatternMeasurement p;
    p.name = pe.at("name").as_string();
    p.is_random = pe.at("is_random").as_bool();
    for (const auto& se : pe.at("sizes").as_array()) {
      beff::SizeMeasurement s;
      s.size = as_i64(se.at("size"));
      const auto& bw = se.at("method_bw").as_array();
      if (bw.size() != static_cast<std::size_t>(beff::kNumMethods)) {
        throw std::runtime_error("checkpoint: bad method_bw arity");
      }
      for (int m = 0; m < beff::kNumMethods; ++m) {
        s.method_bw[static_cast<std::size_t>(m)] =
            bw[static_cast<std::size_t>(m)].as_number();
      }
      s.best_bw = se.at("best_bw").as_number();
      s.looplength = as_int(se.at("looplength"));
      p.sizes.push_back(std::move(s));
    }
    p.avg_bw = pe.at("avg_bw").as_number();
    p.bw_at_lmax = pe.at("bw_at_lmax").as_number();
    r.patterns.push_back(std::move(p));
  }
  r.b_eff = v.at("b_eff").as_number();
  r.rings_logavg = v.at("rings_logavg").as_number();
  r.random_logavg = v.at("random_logavg").as_number();
  r.b_eff_at_lmax = v.at("b_eff_at_lmax").as_number();
  r.rings_logavg_at_lmax = v.at("rings_logavg_at_lmax").as_number();
  r.random_logavg_at_lmax = v.at("random_logavg_at_lmax").as_number();
  const obs::JsonValue& a = v.at("analysis");
  r.analysis.pingpong_bw = a.at("pingpong_bw").as_number();
  r.analysis.worst_cycle_bw = a.at("worst_cycle_bw").as_number();
  r.analysis.bisection_paired_bw = a.at("bisection_paired_bw").as_number();
  r.analysis.bisection_interleaved_bw =
      a.at("bisection_interleaved_bw").as_number();
  for (const auto& e : a.at("cart2d_dims").as_array()) {
    r.analysis.cart2d_dims.push_back(as_int(e));
  }
  for (const auto& e : a.at("cart2d_per_dim_bw").as_array()) {
    r.analysis.cart2d_per_dim_bw.push_back(e.as_number());
  }
  r.analysis.cart2d_combined_bw = a.at("cart2d_combined_bw").as_number();
  for (const auto& e : a.at("cart3d_dims").as_array()) {
    r.analysis.cart3d_dims.push_back(as_int(e));
  }
  for (const auto& e : a.at("cart3d_per_dim_bw").as_array()) {
    r.analysis.cart3d_per_dim_bw.push_back(e.as_number());
  }
  r.analysis.cart3d_combined_bw = a.at("cart3d_combined_bw").as_number();
  r.benchmark_seconds = v.at("benchmark_seconds").as_number();
  r.metrics = read_metrics(v.at("metrics"));
  r.cell_status = read_status(v.at("cell_status"));
  r.cell_labels = read_strings(v.at("cell_labels"));
  return r;
}

// ---------------------------------------------------------------------------
// b_eff_io result round-trip
// ---------------------------------------------------------------------------

void write_beffio_result(obs::JsonWriter& w, const beffio::BeffIoResult& r) {
  w.begin_object();
  w.field("kind", "beffio");
  w.field("nprocs", r.nprocs);
  w.field("scheduled_time", r.scheduled_time);
  w.field("mpart", r.mpart);
  w.key("access").begin_array();
  for (const auto& am : r.access) {
    w.begin_object();
    w.field("method", static_cast<int>(am.method));
    w.key("types").begin_array();
    for (const auto& tr : am.types) {
      w.begin_object();
      w.field("type", static_cast<int>(tr.type));
      w.key("patterns").begin_array();
      for (const auto& pr : tr.patterns) {
        w.begin_object();
        w.field("number", pr.pattern.number);
        w.field("ptype", static_cast<int>(pr.pattern.type));
        w.field("l", pr.pattern.l);
        w.field("L", pr.pattern.L);
        w.field("time_units", pr.pattern.time_units);
        w.field("fill_up", pr.pattern.fill_up);
        w.field("bytes", pr.bytes);
        w.field("seconds", pr.seconds);
        w.field("calls", pr.calls);
        w.end_object();
      }
      w.end_array();
      w.field("bytes", tr.bytes);
      w.field("seconds", tr.seconds);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.field("b_eff_io", r.b_eff_io);
  w.key("random_extension").begin_array();
  for (const double b : r.random_extension) w.value(b);
  w.end_array();
  w.field("benchmark_seconds", r.benchmark_seconds);
  w.field("segment_bytes", r.segment_bytes);
  w.key("fs_stats").begin_object();
  w.field("requests", r.fs_stats.requests);
  w.field("bytes_written", r.fs_stats.bytes_written);
  w.field("bytes_read", r.fs_stats.bytes_read);
  w.field("read_cache_hits", r.fs_stats.read_cache_hits);
  w.field("read_cache_misses", r.fs_stats.read_cache_misses);
  w.field("rmw_chunks", r.fs_stats.rmw_chunks);
  w.field("seeks", r.fs_stats.seeks);
  w.end_object();
  w.key("metrics");
  write_metrics(w, r.metrics);
  w.key("chain_status");
  write_status(w, r.chain_status);
  w.key("chain_labels");
  write_strings(w, r.chain_labels);
  w.end_object();
}

beffio::BeffIoResult read_beffio_result(const obs::JsonValue& v) {
  beffio::BeffIoResult r;
  r.nprocs = as_int(v.at("nprocs"));
  r.scheduled_time = v.at("scheduled_time").as_number();
  r.mpart = as_i64(v.at("mpart"));
  const auto& access = v.at("access").as_array();
  if (access.size() != static_cast<std::size_t>(beffio::kNumAccessMethods)) {
    throw std::runtime_error("checkpoint: bad access arity");
  }
  for (std::size_t m = 0; m < access.size(); ++m) {
    auto& am = r.access[m];
    am.method = static_cast<beffio::AccessMethod>(as_int(access[m].at("method")));
    const auto& types = access[m].at("types").as_array();
    if (types.size() != static_cast<std::size_t>(beffio::kNumPatternTypes)) {
      throw std::runtime_error("checkpoint: bad types arity");
    }
    for (std::size_t t = 0; t < types.size(); ++t) {
      auto& tr = am.types[t];
      tr.type = static_cast<beffio::PatternType>(as_int(types[t].at("type")));
      for (const auto& pe : types[t].at("patterns").as_array()) {
        beffio::PatternAccessResult pr;
        pr.pattern.number = as_int(pe.at("number"));
        pr.pattern.type = static_cast<beffio::PatternType>(as_int(pe.at("ptype")));
        pr.pattern.l = as_i64(pe.at("l"));
        pr.pattern.L = as_i64(pe.at("L"));
        pr.pattern.time_units = as_int(pe.at("time_units"));
        pr.pattern.fill_up = pe.at("fill_up").as_bool();
        pr.bytes = as_i64(pe.at("bytes"));
        pr.seconds = pe.at("seconds").as_number();
        pr.calls = as_i64(pe.at("calls"));
        tr.patterns.push_back(std::move(pr));
      }
      tr.bytes = as_i64(types[t].at("bytes"));
      tr.seconds = types[t].at("seconds").as_number();
    }
  }
  r.b_eff_io = v.at("b_eff_io").as_number();
  const auto& random = v.at("random_extension").as_array();
  if (random.size() != static_cast<std::size_t>(beffio::kNumAccessMethods)) {
    throw std::runtime_error("checkpoint: bad random_extension arity");
  }
  for (std::size_t m = 0; m < random.size(); ++m) {
    r.random_extension[m] = random[m].as_number();
  }
  r.benchmark_seconds = v.at("benchmark_seconds").as_number();
  r.segment_bytes = as_i64(v.at("segment_bytes"));
  const obs::JsonValue& fs = v.at("fs_stats");
  r.fs_stats.requests = as_i64(fs.at("requests"));
  r.fs_stats.bytes_written = as_i64(fs.at("bytes_written"));
  r.fs_stats.bytes_read = as_i64(fs.at("bytes_read"));
  r.fs_stats.read_cache_hits = as_i64(fs.at("read_cache_hits"));
  r.fs_stats.read_cache_misses = as_i64(fs.at("read_cache_misses"));
  r.fs_stats.rmw_chunks = as_i64(fs.at("rmw_chunks"));
  r.fs_stats.seeks = fs.at("seeks").as_number();
  r.metrics = read_metrics(v.at("metrics"));
  r.chain_status = read_status(v.at("chain_status"));
  r.chain_labels = read_strings(v.at("chain_labels"));
  return r;
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

Checkpoint::Checkpoint(std::string path, std::string config_key, bool resume)
    : path_(std::move(path)), config_key_(std::move(config_key)) {
  if (!resume) return;
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "[checkpoint] %s: no journal, starting fresh\n",
                 path_.c_str());
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const obs::JsonValue doc = obs::parse_json(buf.str());
    if (doc.at("schema").as_string() != "balbench-checkpoint/1") {
      throw std::runtime_error("schema is not balbench-checkpoint/1");
    }
    if (doc.at("config").as_string() != config_key_) {
      std::fprintf(stderr,
                   "[checkpoint] %s: written for a different configuration, "
                   "discarding journal\n",
                   path_.c_str());
      return;
    }
    for (const auto& [task, payload] : doc.at("tasks").as_object()) {
      // Round-trip through the typed structs so the stored form is
      // canonical again and a malformed payload is rejected here, not
      // mid-sweep.
      const std::string& kind = payload.at("kind").as_string();
      std::ostringstream out;
      {
        obs::JsonWriter w(out, 0);
        if (kind == "beff") {
          write_beff_result(w, read_beff_result(payload));
        } else if (kind == "beffio") {
          write_beffio_result(w, read_beffio_result(payload));
        } else {
          throw std::runtime_error("unknown task kind '" + kind + "'");
        }
      }
      payloads_[task] = out.str();
    }
    std::fprintf(stderr, "[checkpoint] %s: resuming, %zu task%s completed\n",
                 path_.c_str(), payloads_.size(),
                 payloads_.size() == 1 ? "" : "s");
  } catch (const std::exception& e) {
    payloads_.clear();
    std::fprintf(stderr,
                 "[checkpoint] %s: unusable journal (%s), starting fresh\n",
                 path_.c_str(), e.what());
  }
}

bool Checkpoint::has(const std::string& task) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return payloads_.count(task) != 0;
}

bool Checkpoint::load_beff(const std::string& task,
                           beff::BeffResult* out) const {
  std::string payload;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = payloads_.find(task);
    if (it == payloads_.end()) return false;
    payload = it->second;
  }
  const obs::JsonValue v = obs::parse_json(payload);
  if (v.at("kind").as_string() != "beff") return false;
  *out = read_beff_result(v);
  return true;
}

bool Checkpoint::load_io(const std::string& task,
                         beffio::BeffIoResult* out) const {
  std::string payload;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = payloads_.find(task);
    if (it == payloads_.end()) return false;
    payload = it->second;
  }
  const obs::JsonValue v = obs::parse_json(payload);
  if (v.at("kind").as_string() != "beffio") return false;
  *out = read_beffio_result(v);
  return true;
}

void Checkpoint::record_beff(const std::string& task,
                             const beff::BeffResult& r) {
  std::ostringstream out;
  {
    obs::JsonWriter w(out, 0);
    write_beff_result(w, r);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  payloads_[task] = out.str();
  ++recorded_;
  persist_locked();
}

void Checkpoint::record_io(const std::string& task,
                           const beffio::BeffIoResult& r) {
  std::ostringstream out;
  {
    obs::JsonWriter w(out, 0);
    write_beffio_result(w, r);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  payloads_[task] = out.str();
  ++recorded_;
  persist_locked();
}

std::size_t Checkpoint::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

void Checkpoint::persist_locked() {
  std::string text =
      "{\"schema\":\"balbench-checkpoint/1\",\"config\":\"" +
      obs::json_escape(config_key_) + "\",\"tasks\":{";
  bool first = true;
  for (const auto& [task, payload] : payloads_) {
    if (!first) text += ',';
    first = false;
    text += '"';
    text += obs::json_escape(task);
    text += "\":";
    text += payload;
  }
  text += "}}\n";
  util::atomic_write(path_, text);
}

}  // namespace balbench::report
