// Machine-readable result export (paper Sec. 6: "Both benchmarks will
// also be enhanced to write an additional output that can be used in
// the SKaMPI comparison page").
//
// Two formats:
//   * CSV  -- one row per elementary measurement, stable column set,
//             suitable for gnuplot/pandas and cross-machine diffing.
//   * a key=value summary block ("skampi-style") with the headline
//     aggregates of a run.
//
// Plus a comparison helper that aligns two exported runs and reports
// per-measurement ratios -- the "comparison page" workflow.
#pragma once

#include <map>
#include <ostream>
#include <string>

#include "core/beff/beff.hpp"
#include "core/beffio/beffio.hpp"

namespace balbench::report {

/// CSV of every (pattern, message size) cell of a b_eff protocol:
///   machine,nprocs,pattern,kind,size_bytes,method,bandwidth_Bps
void write_beff_csv(std::ostream& os, const std::string& machine,
                    const beff::BeffResult& result);

/// CSV of every (access method, pattern) cell of a b_eff_io protocol:
///   machine,nprocs,access,type,pattern_no,chunk_l,mem_L,wellformed,
///   calls,bytes,seconds,bandwidth_Bps
void write_beffio_csv(std::ostream& os, const std::string& machine,
                      const beffio::BeffIoResult& result);

/// Headline key=value summary of a b_eff run (skampi-style block).
void write_beff_summary(std::ostream& os, const std::string& machine,
                        const beff::BeffResult& result);
void write_beffio_summary(std::ostream& os, const std::string& machine,
                          const beffio::BeffIoResult& result);

/// Parsed summary block: key -> numeric value.
std::map<std::string, double> parse_summary(const std::string& text);

/// Align two summaries and render a ratio table (b / a) for every key
/// both share; returns the number of compared keys.
int compare_summaries(std::ostream& os, const std::string& name_a,
                      const std::map<std::string, double>& a,
                      const std::string& name_b,
                      const std::map<std::string, double>& b);

}  // namespace balbench::report
