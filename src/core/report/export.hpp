// Machine-readable result export (paper Sec. 6: "Both benchmarks will
// also be enhanced to write an additional output that can be used in
// the SKaMPI comparison page").
//
// Two formats:
//   * CSV  -- one row per elementary measurement, stable column set,
//             suitable for gnuplot/pandas and cross-machine diffing.
//   * a key=value summary block ("skampi-style") with the headline
//     aggregates of a run.
//
// Plus a comparison helper that aligns two exported runs and reports
// per-measurement ratios -- the "comparison page" workflow.
//
// Units (DESIGN.md Sec. 10.1 convention): every bandwidth column or
// key ends in `_Bps` and means *bytes per virtual second*; `_bytes`
// columns are simulated payload bytes; `seconds` columns are virtual
// (simulated) seconds.  Wall-clock never appears in an export, so all
// outputs are byte-identical for every --jobs value (DESIGN.md
// Sec. 9); the structured JSON sibling of these exports is the run
// record of core/report/experiments.hpp (Sec. 10.4).
#pragma once

#include <map>
#include <ostream>
#include <string>

#include "core/beff/beff.hpp"
#include "core/beffio/beffio.hpp"

namespace balbench::report {

/// CSV of every (pattern, message size) cell of a b_eff protocol:
///   machine,nprocs,pattern,kind,size_bytes,method,bandwidth_Bps
/// with size_bytes the message size of the cell and bandwidth_Bps the
/// best-of-methods cell bandwidth in bytes per virtual second.
void write_beff_csv(std::ostream& os, const std::string& machine,
                    const beff::BeffResult& result);

/// CSV of every (access method, pattern) cell of a b_eff_io protocol:
///   machine,nprocs,access,type,pattern_no,chunk_l,mem_L,wellformed,
///   calls,bytes,seconds,bandwidth_Bps
/// chunk_l/mem_L are the pattern's contiguous-chunk and memory-buffer
/// sizes in bytes; bytes/seconds are the simulated totals of the
/// pattern's timed loop (virtual seconds), bandwidth_Bps their ratio.
void write_beffio_csv(std::ostream& os, const std::string& machine,
                      const beffio::BeffIoResult& result);

/// Headline key=value summary of a b_eff run (skampi-style block).
/// Bandwidth keys (`b_eff_Bps`, `per_proc_Bps`, ...) are bytes per
/// virtual second; `lmax_bytes` is L_max in bytes.
void write_beff_summary(std::ostream& os, const std::string& machine,
                        const beff::BeffResult& result);
/// Same for a b_eff_io run: `b_eff_io_Bps` and the per-access-method
/// keys are bytes per virtual second of the weighted timed loops.
void write_beffio_summary(std::ostream& os, const std::string& machine,
                          const beffio::BeffIoResult& result);

/// Parsed summary block: key -> numeric value (units as written by the
/// `write_*_summary` emitters, i.e. encoded in the key suffix).
std::map<std::string, double> parse_summary(const std::string& text);

/// Align two summaries and render a ratio table (b / a) for every key
/// both share; returns the number of compared keys.  Ratios are
/// unitless, so summaries from different machines compare directly.
int compare_summaries(std::ostream& os, const std::string& name_a,
                      const std::map<std::string, double>& a,
                      const std::string& name_b,
                      const std::map<std::string, double>& b);

}  // namespace balbench::report
