// Crash-safe checkpoint journal for the experiments sweep (DESIGN.md
// Sec. 12.3).
//
// The journal is one JSON document, schema "balbench-checkpoint/1":
//
//   { "schema": "balbench-checkpoint/1",
//     "config": "<config hash + fault-plan description>",
//     "tasks": { "<task key>": { "kind": "beff"|"beffio", ... }, ... } }
//
// Every completed sweep task is serialized in full -- every measured
// number, the merged metrics snapshot, and (under a fault plan) the
// per-cell retry outcomes -- so a resumed sweep replays the task from
// the journal instead of re-simulating it and produces byte-identical
// final outputs (asserted by the robust_kill_resume ctest, which
// SIGKILLs a sweep mid-flight and byte-compares the resumed record
// against an uninterrupted run).
//
// Crash safety comes from util::atomic_write: the journal is rewritten
// tmp+fsync+rename after every completed task, so a crash at any
// instant leaves either the previous or the new journal, never a torn
// file.  A journal whose "config" key does not match the current sweep
// (different scope, edited fault spec, different code revision of the
// spec list) is discarded on resume rather than replayed into the
// wrong configuration.
//
// Serialization is lossless for every value the results can hold in
// practice: doubles round-trip through obs::json_double's shortest
// form, integers are exact below 2^53 (the JSON number range; all
// simulated counts are far below it).
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "core/beff/beff.hpp"
#include "core/beffio/beffio.hpp"
#include "obs/json.hpp"

namespace balbench::report {

/// Lossless JSON round-trip of one benchmark result.  Exposed for the
/// round-trip unit tests; the journal is the real consumer.
void write_beff_result(obs::JsonWriter& w, const beff::BeffResult& r);
beff::BeffResult read_beff_result(const obs::JsonValue& v);
void write_beffio_result(obs::JsonWriter& w, const beffio::BeffIoResult& r);
beffio::BeffIoResult read_beffio_result(const obs::JsonValue& v);

class Checkpoint {
 public:
  /// Binds the journal to `path` for a sweep identified by
  /// `config_key`.  With `resume` set, an existing journal is loaded
  /// and its completed tasks become replayable; a missing, malformed
  /// or configuration-mismatched journal starts empty (with a stderr
  /// note -- resuming silently into the wrong config would be worse
  /// than re-running).  Without `resume`, any existing journal is
  /// ignored and overwritten by the first record_*() call.
  Checkpoint(std::string path, std::string config_key, bool resume);

  /// True if `task` was loaded from the journal (replayable).
  [[nodiscard]] bool has(const std::string& task) const;

  /// Replays a completed task into `out`; false if the journal has no
  /// such task (or it was recorded with the other kind).
  bool load_beff(const std::string& task, beff::BeffResult* out) const;
  bool load_io(const std::string& task, beffio::BeffIoResult* out) const;

  /// Records a completed task and atomically rewrites the journal.
  /// Thread-safe: concurrent sweep workers serialize on one mutex, so
  /// the on-disk journal always holds a prefix-consistent task set.
  void record_beff(const std::string& task, const beff::BeffResult& r);
  void record_io(const std::string& task, const beffio::BeffIoResult& r);

  /// Tasks recorded by THIS process (excludes replayed ones); the
  /// --kill-after test hook counts these.
  [[nodiscard]] std::size_t recorded() const;

 private:
  void persist_locked();

  std::string path_;
  std::string config_key_;
  mutable std::mutex mutex_;
  /// task key -> canonical serialized payload ("kind" discriminated).
  std::map<std::string, std::string> payloads_;
  std::size_t recorded_ = 0;
};

}  // namespace balbench::report
