#include "core/beffio/pattern_table.hpp"

#include <algorithm>

#include "util/units.hpp"

namespace balbench::beffio {

using util::kMiB;

const char* pattern_type_name(PatternType t) {
  switch (t) {
    case PatternType::ScatterCollective: return "scatter, collective";
    case PatternType::SharedCollective: return "shared, collective";
    case PatternType::SeparateFiles: return "separated files, non-coll.";
    case PatternType::SegmentedIndividual: return "segmented, non-coll.";
    case PatternType::SegmentedCollective: return "segmented, collective";
  }
  return "?";
}

std::string IoPattern::label() const {
  if (fill_up) return "fill-up";
  return util::format_chunk_label(l);
}

std::int64_t mpart_for_memory(std::int64_t memory_per_node) {
  return std::max<std::int64_t>(2 * kMiB, memory_per_node / 128);
}

std::vector<IoPattern> pattern_table(std::int64_t mpart, std::int64_t mpart_cap) {
  if (mpart_cap > 0) mpart = std::min(mpart, mpart_cap);
  const std::int64_t kB = 1024;

  std::vector<IoPattern> all;
  int no = 0;
  auto add = [&](PatternType t, std::int64_t l, std::int64_t L, int u,
                 bool fill = false) {
    all.push_back(IoPattern{no++, t, l, L, u, fill});
  };

  // --- type 0: strided collective scatter (Table 2, left) -------------
  add(PatternType::ScatterCollective, 1 * kMiB, 1 * kMiB, 0);
  add(PatternType::ScatterCollective, mpart, mpart, 4);
  add(PatternType::ScatterCollective, 1 * kMiB, 2 * kMiB, 4);
  add(PatternType::ScatterCollective, 1 * kMiB, 1 * kMiB, 4);
  add(PatternType::ScatterCollective, 32 * kB, 1 * kMiB, 2);
  add(PatternType::ScatterCollective, 1 * kB, 1 * kMiB, 2);
  add(PatternType::ScatterCollective, 32 * kB + 8, 1 * kMiB + 256, 2);
  add(PatternType::ScatterCollective, 1 * kB + 8, 1 * kMiB + 8 * kB, 2);
  add(PatternType::ScatterCollective, 1 * kMiB + 8, 1 * kMiB + 8, 2);

  // --- types 1 and 2: L := l -------------------------------------------
  struct Row {
    std::int64_t l;
    int u1;  // time units in type 1
    int u2;  // time units in types 2/3/4
  };
  const Row rows[] = {
      {1 * kMiB, 0, 0}, {mpart, 4, 2},        {1 * kMiB, 2, 2},
      {32 * kB, 1, 1},  {1 * kB, 1, 1},       {32 * kB + 8, 1, 1},
      {1 * kB + 8, 1, 1}, {1 * kMiB + 8, 2, 2},
  };
  for (const Row& r : rows) {
    add(PatternType::SharedCollective, r.l, r.l, r.u1);
  }
  for (const Row& r : rows) {
    add(PatternType::SeparateFiles, r.l, r.l, r.u2);
  }
  // --- type 3: same chunks, segmented file, plus fill-up ---------------
  for (const Row& r : rows) {
    add(PatternType::SegmentedIndividual, r.l, r.l, r.u2);
  }
  add(PatternType::SegmentedIndividual, 0, 0, 0, /*fill=*/true);
  // --- type 4: collective twin of type 3 --------------------------------
  for (const Row& r : rows) {
    add(PatternType::SegmentedCollective, r.l, r.l, r.u2);
  }
  add(PatternType::SegmentedCollective, 0, 0, 0, /*fill=*/true);

  return all;
}

std::vector<IoPattern> patterns_of_type(const std::vector<IoPattern>& all,
                                        PatternType t) {
  std::vector<IoPattern> out;
  for (const auto& p : all) {
    if (p.type == t) out.push_back(p);
  }
  return out;
}

int total_time_units(const std::vector<IoPattern>& all) {
  int sum = 0;
  for (const auto& p : all) sum += p.time_units;
  return sum;
}

}  // namespace balbench::beffio
