// The b_eff_io access patterns of Table 2 / Fig. 2 of the paper.
//
// A pattern = pattern type x (disk chunk size l, memory chunk size L,
// time units U).  Five pattern types:
//   0  strided collective scatter: L bytes of memory per call,
//      scattered to/from disk chunks of l
//   1  shared file pointer, collective, one call per chunk (L := l)
//   2  one file per process, non-collective (L := l)
//   3  segmented file, non-collective (same chunks as type 2, plus a
//      fill-up pattern)
//   4  segmented file, collective (same as type 3)
//
// Chunk sizes are 1 kB / 32 kB / 1 MB / M_PART = max(2 MB, memory of
// one node / 128), in wellformed and non-wellformed (+8 byte) forms.
// Sum of all time units is 64; a pattern's share of the scheduled time
// is T/3 * U/64 within its access method (paper Sec. 5.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace balbench::beffio {

enum class PatternType {
  ScatterCollective = 0,
  SharedCollective = 1,
  SeparateFiles = 2,
  SegmentedIndividual = 3,
  SegmentedCollective = 4,
};
inline constexpr int kNumPatternTypes = 5;
const char* pattern_type_name(PatternType t);

/// One row of Table 2 with symbolic sizes resolved.
struct IoPattern {
  int number = 0;           // Table 2 "No."
  PatternType type{};
  std::int64_t l = 0;       // contiguous chunk on disk, bytes
  std::int64_t L = 0;       // contiguous chunk in memory, bytes
  int time_units = 0;       // U; 0 => run exactly one iteration
  bool fill_up = false;     // "fill up segment" pattern of types 3/4
  [[nodiscard]] bool wellformed() const { return (l & (l - 1)) == 0; }
  [[nodiscard]] std::string label() const;
};

/// M_PART = max(2 MB, memory of one node / 128) (paper Sec. 3.2/5.1).
std::int64_t mpart_for_memory(std::int64_t memory_per_node);

/// All patterns of Table 2 for a given M_PART, grouped by type in
/// ascending pattern number.  `mpart_cap` optionally limits M_PART
/// (paper Sec. 5.3: "On the SX-5, a reduced maximum chunk size was
/// used"; Sec. 5.4: reduce M_PART to 2/n GB on large systems).
std::vector<IoPattern> pattern_table(std::int64_t mpart,
                                     std::int64_t mpart_cap = 0);

/// Patterns of one type, in execution order.
std::vector<IoPattern> patterns_of_type(const std::vector<IoPattern>& all,
                                        PatternType t);

/// Sum of the time units over all patterns (64 in the paper).
int total_time_units(const std::vector<IoPattern>& all);

}  // namespace balbench::beffio
