#include "core/beffio/beffio.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "obs/prof.hpp"
#include "pario/file.hpp"
#include "robust/fault.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace balbench::beffio {

using util::kMiB;

const char* access_method_name(AccessMethod m) {
  switch (m) {
    case AccessMethod::InitialWrite: return "initial write";
    case AccessMethod::Rewrite: return "rewrite";
    case AccessMethod::Read: return "read";
  }
  return "?";
}

double AccessMethodResult::weighted_bandwidth() const {
  // Scatter type double-weighted (paper Sec. 5.1).
  double weights[kNumPatternTypes] = {2.0, 1.0, 1.0, 1.0, 1.0};
  double bw[kNumPatternTypes];
  for (int t = 0; t < kNumPatternTypes; ++t) {
    bw[t] = types[static_cast<std::size_t>(t)].bandwidth();
  }
  return util::weighted_mean(bw, weights);
}

namespace {

/// Per-rank driver for one b_eff_io measurement chain.  A chain is a
/// dependency-closed subset of the (access method, pattern type)
/// space; the chain runner calls measure_termination_cost() once per
/// session, then run_type()/run_random_extension() in chain order.
class Driver {
 public:
  Driver(parmsg::Comm& c, pario::IoContext& ctx, const BeffIoOptions& opt,
         const std::vector<IoPattern>& table, BeffIoResult* out)
      : c_(c), ctx_(ctx), opt_(opt), table_(table), out_(out),
        root_(c.rank() == 0) {}

  /// L_SEG fixed by the initial-write pass of type 3 (paper Sec. 5.4).
  [[nodiscard]] std::int64_t segment_bytes() const { return segment_bytes_; }

  void measure_termination_cost() {
    // Warm-up plus a timed round.
    termination_check(false);
    const double t0 = c_.wtime();
    termination_check(false);
    t_check_ = c_.wtime() - t0;
  }

  // ---- Sec. 6 extension: random access patterns ----------------------
  // "we should examine whether random access patterns can be included
  // into the b_eff_io benchmark."  Non-collective 32 kB accesses at
  // seeded random offsets in a shared preallocated file; measured for
  // a fixed 1/64 share of T/3 per method, reported separately.
  void run_random_extension(AccessMethod method) {
    const bool writing = method != AccessMethod::Read;
    const std::int64_t chunk = 32 * 1024;
    const std::int64_t extent =
        std::max<std::int64_t>(64, c_.size()) * 64 * chunk;
    auto mode = method == AccessMethod::InitialWrite ? pario::OpenMode::Create
                                                     : pario::OpenMode::ReadWrite;
    c_.barrier();
    const double t_open = c_.wtime();
    auto file = pario::File::open(c_, ctx_, opt_.file_prefix + "_rand", mode);
    util::Xoshiro256 rng(opt_.random_seed +
                         static_cast<std::uint64_t>(c_.rank()) * 977 +
                         static_cast<std::uint64_t>(method) * 131071);
    const double share = opt_.scheduled_time / 3.0 / 64.0;
    const double deadline = c_.wtime() + share;
    std::int64_t bytes_rank = 0;
    // Random offsets defeat the batched fast-forward (every call has a
    // different target), so this extension runs its calls one by one
    // with a capped call budget.
    int guard = 0;
    bool stop = false;
    while (!stop) {
      const std::int64_t slots = extent / chunk;
      const std::int64_t off = static_cast<std::int64_t>(
                                   rng.below(static_cast<std::uint64_t>(slots))) *
                               chunk;
      if (writing) {
        file.write_at(off, chunk);
      } else {
        file.read_at(off, chunk);
      }
      bytes_rank += chunk;
      stop = termination_check(c_.wtime() >= deadline || ++guard >= 512);
    }
    if (writing) file.sync();
    file.close();
    c_.barrier();
    const double seconds = c_.wtime() - t_open;
    const double total = c_.allreduce_sum(static_cast<double>(bytes_rank));
    if (root_ && out_ != nullptr) {
      out_->random_extension[static_cast<std::size_t>(method)] = total / seconds;
    }
  }

 private:
  // ---- termination check (paper Sec. 5.4) ---------------------------
  // The time-driven loop's stop decision is computed at rank 0 after a
  // barrier and broadcast to all ranks.
  bool termination_check(bool stop_wanted) {
    c_.barrier();
    int flag = (root_ && stop_wanted) ? 1 : 0;
    c_.bcast(&flag, sizeof flag, 0);
    return flag != 0;
  }

  // ---- time-driven pattern loop --------------------------------------
  // `do_calls(k)` performs k back-to-back I/O calls and returns the
  // bytes moved per rank; it may clamp k (file wrap) via max_calls.
  template <typename DoCalls, typename MaxCalls>
  std::int64_t time_driven(const IoPattern& p, double deadline,
                           DoCalls&& do_calls, MaxCalls&& max_calls,
                           std::int64_t* bytes_per_rank) {
    std::int64_t calls = 0;
    calls_steps_ = 0;
    const double t_start = c_.wtime();
    bool stop = false;
    while (!stop) {
      // The batched repeat factor must be identical on every rank
      // (collective calls take it as an argument), so rank 0 decides
      // and broadcasts -- mirroring the paper's root-side termination
      // logic.
      std::int64_t k = 1;
      if (opt_.termination == TerminationMode::GeometricSeries) {
        // Proposed Sec. 5.4 algorithm: repeat factors double between
        // checks; every rank derives the same series locally.
        k = std::min<std::int64_t>(std::int64_t{1} << std::min(calls_steps_, 30),
                                   1'000'000'000);
      } else if (root_ && calls >= opt_.probe_iterations) {
        const double elapsed = c_.wtime() - t_start;
        const double t_iter = elapsed / static_cast<double>(calls);
        const double remaining = deadline - c_.wtime();
        if (t_iter > 0.0 && remaining > 0.0) {
          k = std::max<std::int64_t>(
              1, static_cast<std::int64_t>(remaining * opt_.batch_fraction /
                                           t_iter));
          k = std::min<std::int64_t>(k, 1'000'000'000);
        }
      }
      if (opt_.termination == TerminationMode::PerIterationCheck) {
        c_.bcast(&k, sizeof k, 0);
      }
      k = std::max<std::int64_t>(1, std::min(k, max_calls()));
      *bytes_per_rank += do_calls(k);
      // The released algorithm evaluates the stop criterion after every
      // call; charge that cost for the batched iterations.  The
      // geometric series only checks once per step -- that is its
      // entire point.
      if (opt_.termination == TerminationMode::PerIterationCheck && k > 1) {
        c_.advance(static_cast<double>(k - 1) * t_check_);
      }
      calls += k;
      ++calls_steps_;
      const bool want_stop = p.time_units == 0 || c_.wtime() >= deadline;
      stop = termination_check(want_stop);
    }
    return calls;
  }

  // ---- one pattern type under one access method ----------------------
 public:
  void run_type(AccessMethod method, PatternType type) {
    const auto patterns = patterns_of_type(table_, type);
    const int sum_u = total_time_units(table_);
    const double t_method = opt_.scheduled_time / 3.0;

    pario::OpenMode mode = pario::OpenMode::ReadOnly;
    if (method == AccessMethod::InitialWrite) mode = pario::OpenMode::Create;
    if (method == AccessMethod::Rewrite) mode = pario::OpenMode::ReadWrite;
    const bool writing = method != AccessMethod::Read;

    c_.barrier();
    const double t_open = c_.wtime();

    auto file = open_for_type(type, mode);

    // Segment bookkeeping for types 3/4.
    std::int64_t seg_pos = 0;
    std::vector<std::int64_t> seg_reps;
    if (type == PatternType::SegmentedIndividual ||
        type == PatternType::SegmentedCollective) {
      seg_reps = segmented_repeats(type, method);
    }

    std::size_t seg_index = 0;
    for (const auto& p : patterns) {
      c_.barrier();
      const double p_start = c_.wtime();
      std::int64_t bytes_rank = 0;
      std::int64_t calls = 0;

      switch (type) {
        case PatternType::ScatterCollective:
          calls = run_scatter(p, method, t_method, sum_u, file, &bytes_rank);
          break;
        case PatternType::SharedCollective:
          calls = run_shared(p, method, t_method, sum_u, file, &bytes_rank);
          break;
        case PatternType::SeparateFiles:
          calls = run_separate(p, method, t_method, sum_u, file, &bytes_rank);
          break;
        case PatternType::SegmentedIndividual:
        case PatternType::SegmentedCollective:
          calls = run_segmented(p, type, writing, file, seg_reps, seg_index,
                                &seg_pos, &bytes_rank);
          ++seg_index;
          break;
      }

      // "For write access, this loop is finished with a call to
      // MPI_File_sync" (paper Sec. 5.1): the pattern time includes
      // draining its dirty data.
      if (writing) file.sync();
      c_.barrier();
      const double p_seconds = c_.wtime() - p_start;
      const double bytes_total =
          c_.allreduce_sum(static_cast<double>(bytes_rank));
      if (type == PatternType::SeparateFiles) {
        type2_calls_[p.number] = calls;  // feeds the segmented repeats
      }
      if (root_ && out_ != nullptr) {
        auto& tr = out_->access[static_cast<std::size_t>(method)]
                       .types[static_cast<std::size_t>(type)];
        PatternAccessResult pr;
        pr.pattern = p;
        pr.bytes = static_cast<std::int64_t>(bytes_total);
        pr.seconds = p_seconds;
        pr.calls = calls;
        tr.patterns.push_back(pr);
      }
    }

    if (writing) file.sync();
    file.close();
    c_.barrier();
    const double t_total = c_.wtime() - t_open;
    if (root_ && out_ != nullptr) {
      auto& tr = out_->access[static_cast<std::size_t>(method)]
                     .types[static_cast<std::size_t>(type)];
      tr.type = type;
      tr.seconds = t_total;
      tr.bytes = 0;
      for (const auto& pr : tr.patterns) tr.bytes += pr.bytes;
    }
  }

 private:
  pario::File open_for_type(PatternType type, pario::OpenMode mode) {
    const std::string base = opt_.file_prefix + "_t" +
                             std::to_string(static_cast<int>(type));
    if (type == PatternType::SeparateFiles) {
      return pario::File::open_private(c_, ctx_,
                                       base + "." + std::to_string(c_.rank()),
                                       mode);
    }
    return pario::File::open(c_, ctx_, base, mode);
  }

  // ---- type 0: strided collective scatter ----------------------------
  std::int64_t run_scatter(const IoPattern& p, AccessMethod method,
                           double t_method, int sum_u, pario::File& file,
                           std::int64_t* bytes_rank) {
    file.set_view_strided(p.l);
    const double share = t_method * p.time_units / sum_u;
    const double deadline = c_.wtime() + share;
    const bool writing = method != AccessMethod::Read;
    const std::int64_t round =
        static_cast<std::int64_t>(c_.size()) * p.L;  // file bytes per call

    auto max_calls = [&]() -> std::int64_t {
      if (writing) return 1'000'000'000;
      std::int64_t avail = file.size() - file.view_position();
      if (avail < round) {
        file.seek_view(0);
        avail = file.size();
      }
      return std::max<std::int64_t>(1, avail / std::max<std::int64_t>(round, 1));
    };
    auto do_calls = [&](std::int64_t k) -> std::int64_t {
      if (writing) {
        file.write_all(k * p.L, k);
      } else {
        file.read_all(k * p.L, k);
      }
      return k * p.L;
    };
    return time_driven(p, deadline, do_calls, max_calls, bytes_rank);
  }

  // ---- type 1: shared file pointer, collective ordered ----------------
  std::int64_t run_shared(const IoPattern& p, AccessMethod method,
                          double t_method, int sum_u, pario::File& file,
                          std::int64_t* bytes_rank) {
    const double share = t_method * p.time_units / sum_u;
    const double deadline = c_.wtime() + share;
    const bool writing = method != AccessMethod::Read;
    const std::int64_t round = static_cast<std::int64_t>(c_.size()) * p.l;

    auto max_calls = [&]() -> std::int64_t {
      if (writing) return 1'000'000'000;
      std::int64_t avail = file.size() - file.shared_position();
      if (avail < round) {
        file.seek_shared(0);
        avail = file.size();
      }
      return std::max<std::int64_t>(1, avail / std::max<std::int64_t>(round, 1));
    };
    auto do_calls = [&](std::int64_t k) -> std::int64_t {
      if (writing) {
        file.write_ordered(k * p.l, k);
      } else {
        file.read_ordered(k * p.l, k);
      }
      return k * p.l;
    };
    return time_driven(p, deadline, do_calls, max_calls, bytes_rank);
  }

  // ---- type 2: one file per process, non-collective -------------------
  std::int64_t run_separate(const IoPattern& p, AccessMethod method,
                            double t_method, int sum_u, pario::File& file,
                            std::int64_t* bytes_rank) {
    const double share = t_method * p.time_units / sum_u;
    const double deadline = c_.wtime() + share;
    const bool writing = method != AccessMethod::Read;

    auto max_calls = [&]() -> std::int64_t {
      if (writing) return 1'000'000'000;
      std::int64_t avail = file.size() - file.tell();
      if (avail < p.l) {
        file.seek(0);
        avail = file.size();
      }
      return std::max<std::int64_t>(1, avail / std::max<std::int64_t>(p.l, 1));
    };
    auto do_calls = [&](std::int64_t k) -> std::int64_t {
      if (writing) {
        file.write(k * p.l, k);
      } else {
        file.read(k * p.l, k);
      }
      return k * p.l;
    };
    return time_driven(p, deadline, do_calls, max_calls, bytes_rank);
  }

  // ---- types 3/4: segmented file, size-driven -------------------------
  // Repeat factors come from the type-2 measurements of the same access
  // method; the initial-write pass also fixes L_SEG.
  std::vector<std::int64_t> segmented_repeats(PatternType type,
                                              AccessMethod method) {
    // The chunk rows of types 2/3/4 are identical; collect type 2's
    // call counts in table order.
    std::vector<IoPattern> t2 = patterns_of_type(table_, PatternType::SeparateFiles);
    std::vector<std::int64_t> reps;
    std::int64_t total = 0;
    for (const auto& p : t2) {
      auto it = type2_calls_.find(p.number);
      const std::int64_t r = it != type2_calls_.end() ? it->second : 1;
      reps.push_back(r);
      total += r * p.l;
    }
    if (method == AccessMethod::InitialWrite &&
        type == PatternType::SegmentedIndividual) {
      // L_SEG = roundup(sum, 1 MB), capped so nprocs * L_SEG <= 2 GB
      // (paper Sec. 5.4: 32-bit int limits inside MPI libraries).
      std::int64_t seg = (total + kMiB - 1) / kMiB * kMiB;
      const std::int64_t cap =
          std::max<std::int64_t>(kMiB, (2LL << 30) / c_.size() / kMiB * kMiB);
      segment_bytes_ = std::min(seg, cap);
    }
    if (segment_bytes_ == 0) segment_bytes_ = kMiB;
    // Clamp the repeats so the pattern sequence fits the segment.
    std::int64_t consumed = 0;
    for (std::size_t i = 0; i < reps.size(); ++i) {
      const std::int64_t l = t2[i].l;
      const std::int64_t fit = std::max<std::int64_t>(
          0, (segment_bytes_ - consumed) / std::max<std::int64_t>(l, 1));
      reps[i] = std::min(reps[i], fit);
      consumed += reps[i] * l;
    }
    return reps;
  }

  std::int64_t run_segmented(const IoPattern& p, PatternType type, bool writing,
                             pario::File& file,
                             const std::vector<std::int64_t>& reps,
                             std::size_t seg_index, std::int64_t* seg_pos,
                             std::int64_t* bytes_rank) {
    const bool collective = type == PatternType::SegmentedCollective;
    const std::int64_t seg_base =
        static_cast<std::int64_t>(c_.rank()) * segment_bytes_;

    std::int64_t k = 0;
    std::int64_t bytes = 0;
    std::int64_t chunk = p.l;
    if (p.fill_up) {
      bytes = segment_bytes_ - *seg_pos;
      chunk = bytes;
      k = bytes > 0 ? 1 : 0;
    } else {
      k = seg_index < reps.size() ? reps[seg_index] : 0;
      bytes = k * p.l;
    }
    if (k <= 0 || bytes <= 0) return 0;

    if (collective) {
      if (writing) {
        file.write_at_all(seg_base + *seg_pos, bytes, k);
      } else {
        file.read_at_all(seg_base + *seg_pos, bytes, k);
      }
    } else {
      if (writing) {
        file.write_at(seg_base + *seg_pos, bytes, k);
      } else {
        file.read_at(seg_base + *seg_pos, bytes, k);
      }
    }
    (void)chunk;  // chunk granularity is carried via the call count
    *seg_pos += bytes;
    *bytes_rank += bytes;
    return k;
  }

  parmsg::Comm& c_;
  pario::IoContext& ctx_;
  const BeffIoOptions& opt_;
  const std::vector<IoPattern>& table_;
  BeffIoResult* out_;
  bool root_;
  double t_check_ = 50e-6;
  int calls_steps_ = 0;  // macro-steps in the current time_driven loop
  std::map<int, std::int64_t> type2_calls_;  // pattern number -> calls
  std::int64_t segment_bytes_ = 0;
};

/// Per-chain outputs that would race if chains wrote them into the
/// shared result directly; reduced in chain order by finish_beffio.
struct ChainOutput {
  double seconds = 0.0;
  pfsim::FileSystem::Stats stats;
  obs::MetricsSnapshot metrics;  // filled when collect_metrics is on
};

const char* chain_name(int chain) {
  switch (chain) {
    case 0: return "scatter";
    case 1: return "shared";
    case 2: return "separate+segmented";
    case 3: return "random-extension";
  }
  return "?";
}

/// The dependency-closed measurement chains.  Chains 0/1 cover one
/// file each (scatter, shared); chain 2 keeps the separate/segmented
/// types together because types 3/4 take their repeat counts (and
/// L_SEG) from type 2 of the same access method; chain 3 is the
/// Sec. 6 random extension.  Within a chain the access methods run in
/// order InitialWrite, Rewrite, Read so rewrite/read see the files the
/// initial write created.  Chains share no files and no simulator
/// state, so they may run concurrently.
constexpr int kNumChains = 4;

/// Executes chain `chain` as one fresh session of `transport` with its
/// own engine and file system.  Chains write disjoint slots of
/// `result` (chain 0 -> types[0], chain 1 -> types[1], chain 2 ->
/// types[2..4] + segment_bytes, chain 3 -> random_extension), so
/// concurrent chains never touch the same memory.
void run_chain_once(parmsg::SimTransport& transport,
                    const pfsim::IoSystemConfig& io_config, int nprocs,
                    const BeffIoOptions& options,
                    const std::vector<IoPattern>& table, int chain,
                    BeffIoResult* result, ChainOutput* out) {
  // Host wall-clock scope (observe-only, DESIGN.md Sec. 10.2): no-op
  // unless a profiler is attached; never feeds the result.
  obs::prof::Scope prof_scope("beffio", chain_name(chain));
  std::unique_ptr<pario::IoContext> ctx;
  // Per-chain registry (see CellSweep::run_cell): the chain owns the
  // only reference, and its snapshot is merged in chain order later.
  obs::Registry registry;
  if (options.collect_metrics) transport.attach_metrics(&registry);
  transport.label_next_session("chain " + std::to_string(chain) + ": " +
                               chain_name(chain));
  auto body = [&](parmsg::Comm& c) {
        const bool root = c.rank() == 0;
        Driver driver(c, *ctx, options, table, root ? result : nullptr);
        driver.measure_termination_cost();
        const double t_begin = c.wtime();
        for (int m = 0; m < kNumAccessMethods; ++m) {
          const auto method = static_cast<AccessMethod>(m);
          switch (chain) {
            case 0:
              driver.run_type(method, PatternType::ScatterCollective);
              break;
            case 1:
              driver.run_type(method, PatternType::SharedCollective);
              break;
            case 2:
              driver.run_type(method, PatternType::SeparateFiles);
              driver.run_type(method, PatternType::SegmentedIndividual);
              driver.run_type(method, PatternType::SegmentedCollective);
              break;
            case 3:
              driver.run_random_extension(method);
              break;
          }
        }
        if (root) {
          out->seconds = c.wtime() - t_begin;
          if (chain == 2 && result != nullptr) {
            result->segment_bytes = driver.segment_bytes();
          }
        }
  };
  try {
    transport.run_with_setup(
        nprocs,
        [&](simt::Engine& engine) {
          ctx = std::make_unique<pario::IoContext>(engine, io_config, nprocs);
          if (options.collect_metrics) ctx->fs().set_metrics(&registry);
          // Fault wiring: the transport creates its session injector
          // before calling setup(), so this is the one spot where the
          // chain's file system can pick it up (nullptr when faults
          // are off -- zero behavioral change).
          ctx->fs().set_fault_injector(transport.session_injector());
        },
        body);
  } catch (...) {
    // The retry layer reuses this transport for the next attempt;
    // never leave it pointing at this frame's registry.
    if (options.collect_metrics) transport.attach_metrics(nullptr);
    throw;
  }
  out->stats = ctx->fs().stats();
  if (options.collect_metrics) {
    transport.attach_metrics(nullptr);
    out->metrics = registry.snapshot();
  }
}

/// Resets the `result` slots chain `chain` writes (the disjoint-slot
/// map in run_chain_once's contract) so a retry attempt starts from
/// the same state the first attempt saw.  A chain that exhausts its
/// retry budget keeps these zeroed slots: its bandwidth contributions
/// read as 0 and the aggregation stays finite.
void reset_chain_slots(BeffIoResult* result, int chain) {
  switch (chain) {
    case 0:
    case 1:
      for (auto& am : result->access) {
        auto& slot = am.types[static_cast<std::size_t>(chain)];
        slot = TypeAccessResult{};
        slot.type = static_cast<PatternType>(chain);
      }
      break;
    case 2:
      for (auto& am : result->access) {
        for (int t = 2; t < kNumPatternTypes; ++t) {
          auto& slot = am.types[static_cast<std::size_t>(t)];
          slot = TypeAccessResult{};
          slot.type = static_cast<PatternType>(t);
        }
      }
      result->segment_bytes = 0;
      break;
    case 3:
      result->random_extension = {};
      break;
  }
}

/// run_chain_once under the fault plan's retry policy (straight call
/// when faults are off).  `status` receives the chain's outcome and
/// may be nullptr only when options.fault_plan is nullptr.
void run_chain(parmsg::SimTransport& transport,
               const pfsim::IoSystemConfig& io_config, int nprocs,
               const BeffIoOptions& options,
               const std::vector<IoPattern>& table, int chain,
               BeffIoResult* result, ChainOutput* out,
               robust::CellStatus* status) {
  if (options.fault_plan == nullptr) {
    run_chain_once(transport, io_config, nprocs, options, table, chain, result,
                   out);
    return;
  }
  transport.set_fault_plan(options.fault_plan);
  *status = robust::run_with_retry(
      options.fault_plan->retry,
      [&](int attempt) {
        transport.set_fault_attempt(attempt);
        run_chain_once(transport, io_config, nprocs, options, table, chain,
                       result, out);
      },
      [&] {
        *out = ChainOutput{};
        reset_chain_slots(result, chain);
      });
  transport.set_fault_plan(nullptr);
}

/// Moves per-chain retry outcomes into the result (fault runs only, so
/// fault-free results keep the exact pre-fault field contents).
void attach_chain_status(BeffIoResult* result,
                         std::vector<robust::CellStatus>&& statuses,
                         int nchains) {
  result->chain_status = std::move(statuses);
  for (int chain = 0; chain < nchains; ++chain) {
    result->chain_labels.push_back("chain " + std::to_string(chain) + ": " +
                                   chain_name(chain));
  }
}

/// Ordered reduction over the chain outputs plus the paper Sec. 5.1
/// aggregation.  Strictly chain-ordered so floating-point sums cannot
/// depend on the execution schedule.
void finish_beffio(BeffIoResult* result, const std::vector<ChainOutput>& outs) {
  for (const auto& o : outs) {
    result->benchmark_seconds += o.seconds;
    result->fs_stats.requests += o.stats.requests;
    result->fs_stats.bytes_written += o.stats.bytes_written;
    result->fs_stats.bytes_read += o.stats.bytes_read;
    result->fs_stats.read_cache_hits += o.stats.read_cache_hits;
    result->fs_stats.read_cache_misses += o.stats.read_cache_misses;
    result->fs_stats.rmw_chunks += o.stats.rmw_chunks;
    result->fs_stats.seeks += o.stats.seeks;
    result->metrics.merge(o.metrics);  // chain-ordered, deterministic
  }
  const double w = result->write().weighted_bandwidth();
  const double rw = result->rewrite().weighted_bandwidth();
  const double r = result->read().weighted_bandwidth();
  result->b_eff_io = 0.25 * w + 0.25 * rw + 0.5 * r;
}

BeffIoResult make_result_header(int nprocs, const BeffIoOptions& options) {
  if (options.scheduled_time <= 0.0) {
    throw std::invalid_argument("run_beffio: scheduled_time must be > 0");
  }
  BeffIoResult result;
  result.nprocs = nprocs;
  result.scheduled_time = options.scheduled_time;
  result.mpart = mpart_for_memory(options.memory_per_node);
  if (options.mpart_cap > 0) {
    result.mpart = std::min(result.mpart, options.mpart_cap);
  }
  for (int m = 0; m < kNumAccessMethods; ++m) {
    result.access[static_cast<std::size_t>(m)].method =
        static_cast<AccessMethod>(m);
  }
  return result;
}

void validate_nprocs(int nprocs, int max_processes) {
  if (nprocs < 1 || nprocs > max_processes) {
    throw std::invalid_argument("run_beffio: bad process count");
  }
}

}  // namespace

BeffIoResult run_beffio(parmsg::SimTransport& transport,
                        const pfsim::IoSystemConfig& io_config, int nprocs,
                        const BeffIoOptions& options) {
  validate_nprocs(nprocs, transport.max_processes());
  BeffIoResult result = make_result_header(nprocs, options);
  const auto table = pattern_table(result.mpart);
  const int nchains = options.include_random_type ? kNumChains : kNumChains - 1;
  std::vector<ChainOutput> outs(static_cast<std::size_t>(nchains));
  std::vector<robust::CellStatus> statuses;
  if (options.fault_plan != nullptr) {
    statuses.resize(static_cast<std::size_t>(nchains));
  }
  for (int chain = 0; chain < nchains; ++chain) {
    run_chain(transport, io_config, nprocs, options, table, chain, &result,
              &outs[static_cast<std::size_t>(chain)],
              options.fault_plan != nullptr
                  ? &statuses[static_cast<std::size_t>(chain)]
                  : nullptr);
  }
  finish_beffio(&result, outs);
  if (options.fault_plan != nullptr) {
    attach_chain_status(&result, std::move(statuses), nchains);
  }
  return result;
}

BeffIoResult run_beffio(const SimTransportFactory& make_transport,
                        const pfsim::IoSystemConfig& io_config, int nprocs,
                        const BeffIoOptions& options) {
  const int jobs = util::resolve_jobs(options.jobs);
  if (jobs <= 1) {
    auto transport = make_transport();
    return run_beffio(*transport, io_config, nprocs, options);
  }
  auto probe = make_transport();
  validate_nprocs(nprocs, probe->max_processes());
  probe.reset();
  BeffIoResult result = make_result_header(nprocs, options);
  const auto table = pattern_table(result.mpart);
  const int nchains = options.include_random_type ? kNumChains : kNumChains - 1;
  std::vector<ChainOutput> outs(static_cast<std::size_t>(nchains));
  std::vector<robust::CellStatus> statuses;
  if (options.fault_plan != nullptr) {
    statuses.resize(static_cast<std::size_t>(nchains));
  }
  util::parallel_for(jobs, static_cast<std::size_t>(nchains),
                     [&](std::size_t chain) {
                       auto transport = make_transport();
                       run_chain(*transport, io_config, nprocs, options, table,
                                 static_cast<int>(chain), &result, &outs[chain],
                                 options.fault_plan != nullptr
                                     ? &statuses[chain]
                                     : nullptr);
                     });
  finish_beffio(&result, outs);
  if (options.fault_plan != nullptr) {
    attach_chain_status(&result, std::move(statuses), nchains);
  }
  return result;
}

std::string beffio_report(const BeffIoResult& r) {
  std::ostringstream os;
  os << "b_eff_io protocol: " << r.nprocs << " processes, scheduled T = "
     << util::format_seconds(r.scheduled_time) << ", M_PART = "
     << util::format_bytes(r.mpart) << ", L_SEG = "
     << util::format_bytes(r.segment_bytes) << "\n";
  os << "benchmark virtual time: " << util::format_seconds(r.benchmark_seconds)
     << "\n\n";

  for (const auto& am : r.access) {
    os << "--- " << access_method_name(am.method) << " ---\n";
    util::Table t({"type", "pattern", "chunk l", "mem L", "U", "calls",
                   "MB", "MB/s"});
    for (const auto& tr : am.types) {
      bool first = true;
      for (const auto& pr : tr.patterns) {
        t.add_row({first ? pattern_type_name(tr.type) : "",
                   pr.pattern.fill_up ? "fill-up" : pr.pattern.label(),
                   util::format_bytes(pr.pattern.l),
                   util::format_bytes(pr.pattern.L),
                   util::fmt(pr.pattern.time_units), util::fmt(pr.calls),
                   util::format_mbps(static_cast<double>(pr.bytes), 1),
                   util::format_mbps(pr.bandwidth(), 1)});
        first = false;
      }
      t.add_row({"", "= type total", "", "", "",
                 "", util::format_mbps(static_cast<double>(tr.bytes), 1),
                 util::format_mbps(tr.bandwidth(), 1)});
      t.add_separator();
    }
    t.render(os);
    os << "weighted " << access_method_name(am.method)
       << " bandwidth (scatter x2): "
       << util::format_mbps(am.weighted_bandwidth(), 1) << " MB/s\n\n";
  }

  os << "b_eff_io = 0.25*write + 0.25*rewrite + 0.50*read = "
     << util::format_mbps(r.b_eff_io, 1) << " MB/s\n";
  if (r.random_extension[0] > 0.0 || r.random_extension[2] > 0.0) {
    os << "random-access extension (informational, not averaged): write "
       << util::format_mbps(r.random_extension[0], 1) << ", rewrite "
       << util::format_mbps(r.random_extension[1], 1) << ", read "
       << util::format_mbps(r.random_extension[2], 1) << " MB/s\n";
  }
  os << "filesystem: " << r.fs_stats.requests << " requests, "
     << util::format_bytes(r.fs_stats.bytes_written) << " written, "
     << util::format_bytes(r.fs_stats.bytes_read) << " read, "
     << r.fs_stats.read_cache_hits << " cached / "
     << r.fs_stats.read_cache_misses << " disk read chunks, "
     << r.fs_stats.rmw_chunks << " RMW units\n";
  return os.str();
}

}  // namespace balbench::beffio
