// The effective I/O bandwidth benchmark b_eff_io (paper Sec. 5).
//
// For one partition (number of MPI processes) and scheduled time T:
//
//   for each access method (initial write, rewrite, read; T/3 each):
//     for each pattern type 0..4:
//       open the type's file(s); run each pattern of the type for
//       T/3 * U/64 (time-driven, termination decided at rank 0 and
//       broadcast); write access ends with MPI_File_sync; close.
//       b_eff_io(type) = bytes / (t_close - t_open)
//     b_eff_io(access) = average over types, scatter type counted twice
//   b_eff_io(partition) = 0.25 write + 0.25 rewrite + 0.50 read
//
// Types 3/4 (segmented) are size-driven: their repeat counts per chunk
// size come from the type-2 measurements, and the segment size
// L_SEG = roundup(sum l_i * reps_i, 1 MB), capped so that
// nprocs * L_SEG <= 2 GB (paper Sec. 5.4).
//
// The time-driven loops use the batched fast-forward of DESIGN.md
// Sec. 6: a few probe iterations, then macro-steps whose per-call
// costs (client overhead, shared-pointer token sweeps, skipped
// termination checks) are still charged.
//
// Execution model: the benchmark decomposes into independent *chains*
// that honour the data dependencies above -- chain 0 = scatter type
// under every access method, chain 1 = shared type, chain 2 = the
// separate/segmented types (type-2 call counts and L_SEG feed types
// 3/4 of the same method), chain 3 = the random extension.  Each
// chain runs as its own transport session with its own engine and
// file system, so chains may run on concurrent host threads
// (BeffIoOptions::jobs with the factory overload); per-chain outputs
// land in disjoint slots and are reduced in chain order, keeping
// every reported number byte-identical for every jobs value -- see
// DESIGN.md "Determinism under parallel execution".
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/beffio/pattern_table.hpp"
#include "parmsg/sim_transport.hpp"
#include "pfsim/config.hpp"
#include "pfsim/filesystem.hpp"
#include "robust/retry.hpp"

namespace balbench::beffio {

enum class AccessMethod { InitialWrite = 0, Rewrite = 1, Read = 2 };
inline constexpr int kNumAccessMethods = 3;
const char* access_method_name(AccessMethod m);

/// How the time-driven loops decide when to stop (paper Sec. 5.4).
enum class TerminationMode {
  /// The released algorithm: the stop criterion is evaluated after
  /// every call (a barrier + broadcast each time); our batched
  /// fast-forward charges that per-call cost for skipped iterations.
  PerIterationCheck,
  /// The paper's proposed improvement: "a geometric series of
  /// increasing repeating factors should be used" -- the repeat count
  /// doubles between checks and no per-iteration cost accrues.
  GeometricSeries,
};

struct BeffIoOptions {
  /// Scheduled benchmark time T in seconds for this partition; the
  /// official benchmark requires T >= 15 min (900 s).
  double scheduled_time = 900.0;
  /// Memory of one node, fixes M_PART = max(2 MB, memory/128).
  std::int64_t memory_per_node = 256LL * 1024 * 1024;
  /// Optional cap on M_PART (reduced chunk size on the SX-5 etc).
  std::int64_t mpart_cap = 0;
  /// Probe iterations before fast-forward batching starts.
  int probe_iterations = 1;
  /// Fraction of the remaining pattern time per macro-step.
  double batch_fraction = 0.6;
  TerminationMode termination = TerminationMode::PerIterationCheck;
  /// Sec. 6 extension: also measure a *random access* pattern type
  /// (non-collective accesses at seeded random offsets).  Reported in
  /// BeffIoResult::random_extension, never part of the average.
  bool include_random_type = false;
  std::uint64_t random_seed = 2001;
  std::string file_prefix = "beffio";

  /// Host worker threads for the chain sweep (factory overload only;
  /// the single-transport overload is always serial).  <= 0 means
  /// hardware concurrency.  Any value produces byte-identical results.
  int jobs = 1;

  /// Collect obs metrics: each chain runs with its own obs::Registry
  /// attached to its transport and file system, and the per-chain
  /// snapshots are merged in chain order into BeffIoResult::metrics.
  /// Deterministic for every jobs value (DESIGN.md Sec. 10.2).
  bool collect_metrics = false;

  /// Deterministic fault plan (robust subsystem; not owned, must
  /// outlive the run).  When set, every chain runs under the plan's
  /// retry policy: a throwing chain is retried with its result slots
  /// reset, a chain that exhausts the budget keeps zeroed slots and
  /// the sweep completes; per-chain outcomes land in
  /// BeffIoResult::chain_status.  nullptr (default) leaves the
  /// execution path byte-identical to the pre-fault code.
  const robust::FaultPlan* fault_plan = nullptr;
};

/// Result of one pattern under one access method.
struct PatternAccessResult {
  IoPattern pattern;
  std::int64_t bytes = 0;        // across all ranks
  double seconds = 0.0;          // barrier-to-barrier pattern duration
  std::int64_t calls = 0;        // I/O calls per rank
  [[nodiscard]] double bandwidth() const {
    return seconds > 0.0 ? static_cast<double>(bytes) / seconds : 0.0;
  }
};

struct TypeAccessResult {
  PatternType type{};
  std::vector<PatternAccessResult> patterns;
  std::int64_t bytes = 0;   // all patterns of this type
  double seconds = 0.0;     // open .. close
  [[nodiscard]] double bandwidth() const {
    return seconds > 0.0 ? static_cast<double>(bytes) / seconds : 0.0;
  }
};

struct AccessMethodResult {
  AccessMethod method{};
  std::array<TypeAccessResult, kNumPatternTypes> types;
  /// Average over pattern types with double weight for the scatter
  /// type (paper Sec. 5.1).
  [[nodiscard]] double weighted_bandwidth() const;
};

struct BeffIoResult {
  int nprocs = 0;
  double scheduled_time = 0.0;
  std::int64_t mpart = 0;
  std::array<AccessMethodResult, kNumAccessMethods> access;
  /// 0.25 * write + 0.25 * rewrite + 0.50 * read.
  double b_eff_io = 0.0;
  /// Sec. 6 extension (include_random_type): random-offset access
  /// bandwidth per access method; informational only.
  std::array<double, kNumAccessMethods> random_extension{};
  double benchmark_seconds = 0.0;  // virtual duration of the whole run
  std::int64_t segment_bytes = 0;  // L_SEG used by types 3/4
  pfsim::FileSystem::Stats fs_stats;

  /// Merged per-chain metric snapshots (parmsg.* / pario.* / pfsim.* /
  /// simt.* taxonomy); empty unless BeffIoOptions::collect_metrics.
  obs::MetricsSnapshot metrics;

  /// Per-chain retry outcomes and session labels, indexed by chain id;
  /// empty unless BeffIoOptions::fault_plan was set (so fault-free
  /// results -- and everything serialized from them -- are unchanged).
  std::vector<robust::CellStatus> chain_status;
  std::vector<std::string> chain_labels;

  /// Worst outcome over chain_status (Ok when faults were disabled).
  [[nodiscard]] robust::Outcome worst_outcome() const {
    robust::Outcome worst = robust::Outcome::Ok;
    for (const auto& s : chain_status) {
      if (static_cast<int>(s.outcome) > static_cast<int>(worst)) {
        worst = s.outcome;
      }
    }
    return worst;
  }

  [[nodiscard]] const AccessMethodResult& write() const { return access[0]; }
  [[nodiscard]] const AccessMethodResult& rewrite() const { return access[1]; }
  [[nodiscard]] const AccessMethodResult& read() const { return access[2]; }
};

/// Makes one independent transport instance per measurement chain.
/// Must be callable from concurrent threads; each returned transport
/// is used by exactly one thread.
using SimTransportFactory =
    std::function<std::unique_ptr<parmsg::SimTransport>()>;

/// Run b_eff_io on `nprocs` ranks of the simulated machine with the
/// given I/O subsystem.  Executes the measurement chains serially on
/// the given transport (one session per chain); `options.jobs` is
/// ignored.
BeffIoResult run_beffio(parmsg::SimTransport& transport,
                        const pfsim::IoSystemConfig& io_config, int nprocs,
                        const BeffIoOptions& options);

/// Run b_eff_io with `options.jobs` host threads; each chain
/// constructs its own transport via `make_transport`.  Byte-identical
/// to the serial overload for every jobs value.
BeffIoResult run_beffio(const SimTransportFactory& make_transport,
                        const pfsim::IoSystemConfig& io_config, int nprocs,
                        const BeffIoOptions& options);

/// Detailed report: per-pattern bandwidth table for each access method
/// (the data behind Fig. 4) plus the aggregation summary.
std::string beffio_report(const BeffIoResult& result);

}  // namespace balbench::beffio
