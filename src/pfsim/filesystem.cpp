#include "pfsim/filesystem.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "net/flow.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "robust/fault.hpp"

namespace balbench::pfsim {

namespace {

/// I/O fabric: clients [0, C) and servers [C, C+S) joined by a shared
/// fabric link.  Client and server ports are duplex-shared (send and
/// receive traffic compete), which is what GigaRing/SP switch adapters
/// behave like under mixed read/write load.
class IoFabricTopology final : public net::Topology {
 public:
  IoFabricTopology(int clients, int servers, const IoSystemConfig& cfg)
      : clients_(clients), servers_(servers), latency_(cfg.fabric_latency) {
    for (int i = 0; i < clients; ++i) {
      links_.push_back({"client" + std::to_string(i), cfg.client_link_bw});
    }
    for (int j = 0; j < servers; ++j) {
      links_.push_back({"server" + std::to_string(j), cfg.server_bandwidth});
    }
    fabric_ = static_cast<net::LinkId>(links_.size());
    links_.push_back({"fabric", cfg.fabric_bandwidth});
  }

  int num_endpoints() const override { return clients_ + servers_; }
  const std::vector<net::Link>& links() const override { return links_; }

  void route(int src, int dst, std::vector<net::LinkId>& out) const override {
    out.clear();
    if (src == dst) return;
    out.push_back(src);  // port of src endpoint (client or server)
    out.push_back(fabric_);
    out.push_back(dst);
  }

  double latency(int, int) const override { return latency_; }
  double self_bandwidth() const override { return 4e9; }

  std::string describe() const override {
    std::ostringstream oss;
    oss << "I/O fabric: " << clients_ << " clients, " << servers_ << " servers";
    return oss.str();
  }

 private:
  int clients_;
  int servers_;
  double latency_;
  net::LinkId fabric_ = 0;
  std::vector<net::Link> links_;
};

}  // namespace

struct FileSystem::FileState {
  std::string name;
  std::int64_t size = 0;               // highest byte ever written
  double last_disk_completion = 0.0;   // for sync()
  // Per-client append stream positions for sequentiality detection.
  std::map<int, std::int64_t> client_streams;
  // Cache residency (global LRU approximation): the file region ending
  // at tail_end was touched when the global traffic clock stood at
  // tail_clock; every byte of traffic since then evicts one byte.
  std::int64_t tail_end = 0;
  std::int64_t tail_clock = 0;
};

struct FileSystem::ServerState {
  double busy_until = 0.0;  // disk queue horizon
};

FileSystem::FileSystem(simt::Engine& engine, IoSystemConfig config, int num_clients)
    : engine_(engine), config_(std::move(config)), num_clients_(num_clients) {
  if (num_clients < 1) throw std::invalid_argument("FileSystem: need >= 1 client");
  if (config_.num_servers < 1) throw std::invalid_argument("FileSystem: need >= 1 server");
  fabric_ = std::make_unique<IoFabricTopology>(num_clients, config_.num_servers, config_);
  flows_ = std::make_unique<net::FlowNetwork>(*fabric_, engine_);
  servers_.resize(static_cast<std::size_t>(config_.num_servers));
}

FileSystem::~FileSystem() = default;

void FileSystem::set_metrics(obs::Registry* registry) {
  registry_ = registry;
  if (registry == nullptr) {
    m_requests_ = m_bytes_written_ = m_bytes_read_ = nullptr;
    m_cache_hits_ = m_cache_misses_ = m_rmw_chunks_ = nullptr;
    m_seeks_ = nullptr;
    m_backlog_ = nullptr;
    return;
  }
  m_requests_ = &registry->counter("pfsim.requests");
  m_bytes_written_ = &registry->counter("pfsim.bytes_written");
  m_bytes_read_ = &registry->counter("pfsim.bytes_read");
  m_cache_hits_ = &registry->counter("pfsim.read_cache_hit_chunks");
  m_cache_misses_ = &registry->counter("pfsim.read_cache_miss_chunks");
  m_rmw_chunks_ = &registry->counter("pfsim.rmw_chunks");
  m_seeks_ = &registry->sum("pfsim.seeks");
  m_backlog_ = &registry->gauge("pfsim.backlog_seconds");
}

void FileSystem::note_backlog() {
  if (m_backlog_ == nullptr) return;
  double backlog = 0.0;
  for (const ServerState& s : servers_) {
    backlog = std::max(backlog, s.busy_until - engine_.now());
  }
  m_backlog_->set_max(backlog);
  registry_->sample("pfsim.backlog_seconds", engine_.now(), backlog);
}

FileId FileSystem::open(const std::string& name) {
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i] && files_[i]->name == name) return static_cast<FileId>(i);
  }
  auto f = std::make_unique<FileState>();
  f->name = name;
  files_.push_back(std::move(f));
  return static_cast<FileId>(files_.size() - 1);
}

void FileSystem::truncate(FileId file) {
  const auto idx = static_cast<std::size_t>(file);
  if (idx >= files_.size() || !files_[idx]) {
    throw std::out_of_range("FileSystem::truncate: bad file id");
  }
  files_[idx]->size = 0;
}

void FileSystem::remove(const std::string& name) {
  for (auto& f : files_) {
    if (f && f->name == name) f.reset();
  }
}

std::int64_t FileSystem::file_size(FileId file) const {
  const auto idx = static_cast<std::size_t>(file);
  if (idx >= files_.size() || !files_[idx]) {
    throw std::out_of_range("FileSystem::file_size: bad file id");
  }
  return files_[idx]->size;
}

void FileSystem::split_by_server(std::int64_t offset, std::int64_t bytes,
                                 std::vector<std::int64_t>& per_server) const {
  per_server.assign(static_cast<std::size_t>(config_.num_servers), 0);
  const std::int64_t su = config_.stripe_unit;
  std::int64_t pos = offset;
  std::int64_t left = bytes;
  while (left > 0) {
    const std::int64_t stripe = pos / su;
    const auto server = static_cast<std::size_t>(stripe % config_.num_servers);
    const std::int64_t in_stripe = su - pos % su;
    const std::int64_t take = std::min(left, in_stripe);
    per_server[server] += take;
    pos += take;
    left -= take;
  }
}

double FileSystem::disk_work(ServerState& /*server*/, const Request& req,
                             std::int64_t server_bytes, bool contiguous,
                             bool is_write) {
  const std::int64_t chunk =
      req.chunks > 0 ? std::max<std::int64_t>(1, req.bytes / req.chunks) : req.bytes;
  double rate = static_cast<double>(config_.disks_per_server) * config_.disk.bandwidth;
  if (is_write && config_.write_penalty > 1.0) rate /= config_.write_penalty;

  double work = 0.0;
  std::int64_t extra_bytes = 0;

  // The write-back cache coalesces a sequential stream of small chunks
  // into filesystem blocks before draining (GPFS write-behind style);
  // sequential read misses are served with block-granular read-ahead.
  // The cache-bypass path sees the raw chunk size.
  const bool bypass = config_.cache_bypass_threshold > 0 &&
                      chunk >= config_.cache_bypass_threshold;
  const std::int64_t unit =
      req.aggregated ? std::max<std::int64_t>(server_bytes, 1)
                     : (bypass ? chunk : std::max(chunk, config_.block_size));

  // Amortized repositioning: one seek per coalescing unit drained plus
  // one for breaking the stream.  A contiguous small request inside a
  // stream pays only its fractional share.
  double seeks = contiguous ? 0.0 : 1.0;
  if (unit < config_.disk.sequential_threshold) {
    seeks += static_cast<double>(server_bytes) / static_cast<double>(unit);
  }

  // Non-wellformed (+8 byte) accesses: unaligned datatype handling in
  // the I/O library costs per chunk, and each striping boundary inside
  // a chunk leaves a partial block to read-modify-write.
  // Wellformed chunks either tile a block exactly (block % chunk == 0)
  // or span whole blocks (chunk % block == 0); everything else (the
  // "+8 byte" sizes) straddles block boundaries on every access.
  const std::int64_t blk = config_.block_size;
  const bool aligned = req.offset % std::min(blk, chunk) == 0 &&
                       (chunk % blk == 0 || blk % chunk == 0);
  if (is_write && !aligned) {
    // Aggregated (two-phase) data is contiguous: the original chunk
    // boundaries are gone, only striping boundaries can straddle.
    const std::int64_t span =
        req.aggregated ? config_.stripe_unit
                       : std::max<std::int64_t>(1, std::min(chunk, config_.stripe_unit));
    const double chunks_here =
        req.aggregated ? 1.0
                       : static_cast<double>(server_bytes) /
                             static_cast<double>(std::max<std::int64_t>(chunk, 1));
    work += chunks_here * config_.unaligned_overhead;
    const std::int64_t rmw_events =
        std::max<std::int64_t>(1, server_bytes / std::max<std::int64_t>(1, span));
    extra_bytes += rmw_events * config_.block_size;
    work += 0.25 * config_.disk.seek_time * static_cast<double>(rmw_events);
    stats_.rmw_chunks += rmw_events;
    if (m_rmw_chunks_ != nullptr) {
      m_rmw_chunks_->add(static_cast<std::uint64_t>(rmw_events));
    }
  }

  stats_.seeks += seeks;
  if (m_seeks_ != nullptr) m_seeks_->add(seeks);
  work += seeks * config_.disk.seek_time;
  work += static_cast<double>(server_bytes + extra_bytes) / rate;
  work += static_cast<double>(std::max<std::int64_t>(1, (server_bytes + unit - 1) / unit)) *
          config_.server_request_overhead;
  return work;
}

void FileSystem::submit(const Request& req, std::function<void()> done) {
  const auto fidx = static_cast<std::size_t>(req.file);
  if (fidx >= files_.size() || !files_[fidx]) {
    throw std::out_of_range("FileSystem::submit: bad file id");
  }
  if (req.client < 0 || req.client >= num_clients_) {
    throw std::out_of_range("FileSystem::submit: bad client id");
  }
  if (req.bytes <= 0 || req.chunks <= 0) {
    throw std::invalid_argument("FileSystem::submit: bytes and chunks must be > 0");
  }

  // Fault injection (robust subsystem): one decision per request, in
  // the deterministic fiber order of the session.  A transient error
  // throws *before* any filesystem state changes, so a retried attempt
  // starts from a consistent stream/cache picture; a latency spike
  // rides on the completion callback.
  if (injector_ != nullptr) {
    const auto fault = injector_->next_io();
    if (fault.error) {
      throw robust::InjectedFault(
          "injected transient I/O error (client " + std::to_string(req.client) +
          ", " + (req.write ? "write" : "read") + " of " +
          std::to_string(req.bytes) + " bytes)");
    }
    if (fault.spike_s > 0.0) {
      done = [this, spike = fault.spike_s, inner = std::move(done)]() mutable {
        engine_.schedule_after(spike, std::move(inner));
      };
    }
  }

  FileState& file = *files_[fidx];

  // Stream contiguity: does this request continue the client's last
  // access to this file?
  auto stream = file.client_streams.find(req.client);
  const bool contiguous =
      stream != file.client_streams.end() && stream->second == req.offset;
  file.client_streams[req.client] = req.offset + req.bytes;

  // Advance the global traffic clock and refresh this file's resident
  // tail (both reads and writes allocate into the cache).
  global_clock_ += req.bytes;
  if (req.offset + req.bytes >= file.tail_end) {
    file.tail_end = req.offset + req.bytes;
    file.tail_clock = global_clock_;
  }

  ++stats_.requests;
  (req.write ? stats_.bytes_written : stats_.bytes_read) += req.bytes;
  if (m_requests_ != nullptr) {
    m_requests_->add(1);
    (req.write ? m_bytes_written_ : m_bytes_read_)
        ->add(static_cast<std::uint64_t>(req.bytes));
  }

  std::vector<std::int64_t> per_server;
  split_by_server(req.offset, req.bytes, per_server);

  const std::int64_t chunk = std::max<std::int64_t>(1, req.bytes / req.chunks);
  const bool bypass = config_.cache_bypass_threshold > 0 &&
                      chunk >= config_.cache_bypass_threshold;
  const double drain_rate =
      static_cast<double>(config_.disks_per_server) * config_.disk.bandwidth;
  const double cache_allowance =
      static_cast<double>(config_.cache_bytes) /
      static_cast<double>(config_.num_servers) / drain_rate;

  // Shared completion tracker across the striped parts.
  struct Pending {
    int remaining = 0;
    double done_at = 0.0;
    std::function<void()> done;
  };
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);
  for (std::int64_t b : per_server) {
    if (b > 0) ++pending->remaining;
  }
  assert(pending->remaining > 0);

  auto finish_part = [this, pending](double at) {
    pending->done_at = std::max(pending->done_at, at);
    if (--pending->remaining == 0) {
      engine_.schedule_at(std::max(pending->done_at, engine_.now()),
                          [pending] { pending->done(); });
    }
  };

  if (req.write) {
    file.size = std::max(file.size, req.offset + req.bytes);
    // Data streams client -> server, then queues for the disks; the
    // write "completes" once the cache has admitted it (bounded
    // backlog), or after full disk service when the cache is bypassed.
    for (int s = 0; s < config_.num_servers; ++s) {
      const std::int64_t b = per_server[static_cast<std::size_t>(s)];
      if (b == 0) continue;
      flows_->start_flow(
          req.client, num_clients_ + s, static_cast<double>(b),
          [this, s, req, b, bypass, cache_allowance, contiguous, &file,
           finish_part](simt::Time now) {
            ServerState& server = servers_[static_cast<std::size_t>(s)];
            const double w = disk_work(server, req, b, contiguous, true);
            server.busy_until = std::max(server.busy_until, now) + w;
            file.last_disk_completion =
                std::max(file.last_disk_completion, server.busy_until);
            const double done_at =
                bypass ? server.busy_until
                       : std::max(now, server.busy_until - cache_allowance);
            note_backlog();
            finish_part(done_at);
          });
    }
    return;
  }

  // Read: cache hit if the requested range lies inside the still
  // resident window behind the file's most recently touched region.
  // The window shrinks by one byte for every byte of traffic (to any
  // file) since then -- a global LRU approximation, so many files
  // sharing one cache age each other out (the paper's Sec. 5.4 cache
  // discussion and the T = 10 vs 30 min effect).
  const std::int64_t aged = global_clock_ - file.tail_clock;
  const std::int64_t window =
      std::max<std::int64_t>(0, config_.cache_bytes - aged);
  const bool hit = !bypass && window > 0 && req.offset + req.bytes <= file.tail_end &&
                   req.offset >= file.tail_end - window;
  (hit ? stats_.read_cache_hits : stats_.read_cache_misses) += req.chunks;
  if (m_cache_hits_ != nullptr) {
    (hit ? m_cache_hits_ : m_cache_misses_)
        ->add(static_cast<std::uint64_t>(req.chunks));
  }

  for (int s = 0; s < config_.num_servers; ++s) {
    const std::int64_t b = per_server[static_cast<std::size_t>(s)];
    if (b == 0) continue;
    auto start_network = [this, s, req, b, finish_part](double at) {
      engine_.schedule_at(std::max(at, engine_.now()), [this, s, req, b,
                                                        finish_part] {
        flows_->start_flow(num_clients_ + s, req.client, static_cast<double>(b),
                           [finish_part](simt::Time t) { finish_part(t); });
      });
    };
    ServerState& server = servers_[static_cast<std::size_t>(s)];
    if (hit) {
      // Serve from the buffer cache: memory-speed at the server, only
      // the network path is charged.
      start_network(engine_.now());
    } else {
      const double w = disk_work(server, req, b, contiguous, false);
      server.busy_until = std::max(server.busy_until, engine_.now()) + w;
      note_backlog();
      start_network(server.busy_until);
    }
  }
}

void FileSystem::sync(FileId file, std::function<void()> done) {
  const auto fidx = static_cast<std::size_t>(file);
  if (fidx >= files_.size() || !files_[fidx]) {
    throw std::out_of_range("FileSystem::sync: bad file id");
  }
  const double at = std::max(files_[fidx]->last_disk_completion, engine_.now());
  engine_.schedule_at(at, std::move(done));
}

}  // namespace balbench::pfsim
