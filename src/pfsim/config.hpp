// Configuration of the simulated parallel I/O subsystem.
//
// One IoSystemConfig describes everything the paper reports (or its
// references report) about a platform's I/O hardware and MPI-I/O
// software: I/O server counts, striping, disk characteristics, the
// filesystem buffer cache, and which MPI-I/O optimizations the
// platform's library implements.  pfsim::FileSystem turns this into a
// virtual-time co-simulation; pario::File implements MPI-I/O semantics
// on top.
#pragma once

#include <cstdint>
#include <string>

namespace balbench::pfsim {

struct DiskConfig {
  double bandwidth = 50e6;   // sustained streaming bytes/s per disk
  double seek_time = 5e-3;   // positioning cost per discontiguous access
  /// Contiguous runs shorter than this pay a seek each; longer runs
  /// amortize positioning (tracks-per-access heuristic).
  std::int64_t sequential_threshold = 256 * 1024;
};

struct IoSystemConfig {
  std::string name;

  // --- hardware ------------------------------------------------------
  int num_servers = 1;           // I/O server nodes (VSDs, RAID controllers)
  int disks_per_server = 1;      // striped disks behind each server
  DiskConfig disk;
  double server_bandwidth = 100e6;   // per-server network/memory path, bytes/s
  double client_link_bw = 100e6;     // per client node into the I/O fabric
  double fabric_bandwidth = 1e9;     // shared fabric aggregate, bytes/s
  double fabric_latency = 30e-6;     // client <-> server wire latency
  /// Writes cost this factor more disk time than reads (parity update,
  /// replication, token revocation -- GPFS writes ~690 MB/s vs reads
  /// ~950 MB/s in the paper's reference [8]).
  double write_penalty = 1.0;

  // --- filesystem ------------------------------------------------------
  std::int64_t stripe_unit = 64 * 1024;  // striping across servers
  std::int64_t block_size = 4096;        // RMW granularity for unaligned access
  std::int64_t cache_bytes = 1LL << 30;  // buffer cache (write-back + read)
  /// NEC SFS behaviour: requests of at least this size bypass the
  /// cache (0 = never bypass).
  std::int64_t cache_bypass_threshold = 0;

  // --- software (MPI-I/O library) -------------------------------------
  double open_close_overhead = 4e-3;       // per MPI_File_open / close
  double request_overhead = 150e-6;        // client-side cost per I/O call
  double server_request_overhead = 30e-6;  // per request at the server
  /// Library implements two-phase buffering for collective strided
  /// access (pattern type 0).
  bool collective_two_phase = true;
  /// Library optimizes collective access to segmented files (pattern
  /// type 4).  The IBM SP MPI-I/O prototype of the paper did not:
  /// "the collective counterpart is more than a factor of 10 worse".
  bool optimized_segmented_collective = true;
  /// Cost of one shared-file-pointer update (fetch-and-add token).
  double shared_pointer_overhead = 120e-6;
  /// Per-chunk handling cost for non-block-aligned ("non-wellformed")
  /// accesses: unaligned datatype staging and partial-block locking.
  double unaligned_overhead = 500e-6;
};

}  // namespace balbench::pfsim
