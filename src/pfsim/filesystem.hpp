// Virtual-time parallel filesystem simulator.
//
// Models the I/O substrate the paper's b_eff_io runs on: striped I/O
// servers behind a network fabric, per-server disk queues with seek
// costs and read-modify-write penalties for unaligned access, and a
// write-back buffer cache.  All timing flows through the same
// simt::Engine as the communication simulation, so a rank's I/O and
// message passing share one virtual clock.
//
// Mechanisms and the paper effects they produce:
//  * striping + per-server disk queues  -> aggregate disk bandwidth,
//    T3E "I/O is a global resource" flatness vs. SP per-client scaling
//    (client links are the SP bottleneck).
//  * seek cost for small/discontiguous chunks -> the chunk-size slopes
//    of Fig. 4.
//  * RMW for non-block-aligned requests -> the "+8 byte" penalty.
//  * write-back cache with bounded backlog -> writes absorb at network
//    speed until the cache fills, then throttle to disk drain rate;
//    sync() waits for the backlog; rereads of recently written data
//    are served from cache (the T=10 vs 30 min effect of Sec. 5.4).
//
// Requests carry a chunk count: `chunks` back-to-back accesses of
// `bytes/chunks` each.  This lets the benchmark driver batch a whole
// time-driven loop into one submission (per-chunk seeks and overheads
// are still charged) -- the deterministic fast-forward of DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pfsim/config.hpp"
#include "simt/engine.hpp"

namespace balbench::net {
class Topology;
class FlowNetwork;
}  // namespace balbench::net

namespace balbench::obs {
class Counter;
class Gauge;
class Registry;
class Sum;
}  // namespace balbench::obs

namespace balbench::robust {
class SessionInjector;
}  // namespace balbench::robust

namespace balbench::pfsim {

using FileId = int;

class FileSystem {
 public:
  /// `num_clients` fixes the client side of the I/O fabric; client ids
  /// passed in requests must be < num_clients.
  FileSystem(simt::Engine& engine, IoSystemConfig config, int num_clients);
  ~FileSystem();

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  /// Opens (creating if necessary) a file by name.
  FileId open(const std::string& name);
  /// Drops a file and its cached state.
  void remove(const std::string& name);
  /// Resets a file's length to zero (MPI_MODE_CREATE reopen).
  void truncate(FileId file);

  struct Request {
    int client = 0;
    FileId file = 0;
    std::int64_t offset = 0;    // first byte
    std::int64_t bytes = 0;     // total payload
    std::int64_t chunks = 1;    // back-to-back accesses of bytes/chunks
    bool write = true;
    /// Request produced by a collective two-phase aggregator: counts
    /// as one large aligned access at the servers.
    bool aggregated = false;
  };

  /// Asynchronous submit; `done` fires at the virtual completion time
  /// (for writes: data accepted into cache / throttled by the cache;
  /// for reads: data delivered to the client).
  void submit(const Request& req, std::function<void()> done);

  /// Fires `done` once every byte previously written to `file` is on
  /// disk (MPI_File_sync is weaker in the standard -- see Sec. 5.4 of
  /// the paper -- but the benchmark relies on this stronger behavior).
  /// Only writes whose submit() completion has fired are covered;
  /// call it after the writes return, as a blocking writer does.
  void sync(FileId file, std::function<void()> done);

  [[nodiscard]] std::int64_t file_size(FileId file) const;
  [[nodiscard]] const IoSystemConfig& config() const { return config_; }
  [[nodiscard]] int num_clients() const { return num_clients_; }

  struct Stats {
    std::int64_t requests = 0;
    std::int64_t bytes_written = 0;
    std::int64_t bytes_read = 0;
    std::int64_t read_cache_hits = 0;    // chunks served from cache
    std::int64_t read_cache_misses = 0;  // chunks served from disk
    std::int64_t rmw_chunks = 0;         // chunk/stripe units paying RMW
    double seeks = 0;                    // disk repositionings (amortized)
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// Attaches a metrics registry (not owned; nullptr detaches): every
  /// Stats increment is mirrored into `pfsim.*` metrics, and the disk
  /// backlog (deepest server queue, in virtual seconds) feeds the
  /// `pfsim.backlog_seconds` gauge plus -- when the registry has
  /// sampling enabled -- timestamped samples for the Chrome trace.
  /// All quantities are simulated, so run records stay deterministic.
  void set_metrics(obs::Registry* registry);

  /// Attaches the current session's fault injector (not owned; nullptr
  /// detaches -- the default, with zero behavioral change).  With an
  /// injector attached, submit() consults it once per request: an
  /// injected transient error throws robust::InjectedFault from the
  /// calling rank's fiber before any filesystem state changes; an
  /// injected latency spike delays the request's completion callback
  /// by the plan's spike length in virtual time.
  void set_fault_injector(robust::SessionInjector* injector) {
    injector_ = injector;
  }

 private:
  struct FileState;
  struct ServerState;

  /// Striped split of [offset, offset+bytes) over the servers.
  void split_by_server(std::int64_t offset, std::int64_t bytes,
                       std::vector<std::int64_t>& per_server) const;
  /// Disk service time for a server-side portion of a request.
  /// `contiguous`: the request continues its client's stream in the
  /// file (seek costs amortize to one per coalescing unit).
  double disk_work(ServerState& server, const Request& req,
                   std::int64_t server_bytes, bool contiguous, bool is_write);

  simt::Engine& engine_;
  IoSystemConfig config_;
  int num_clients_;

  std::unique_ptr<net::Topology> fabric_;
  std::unique_ptr<net::FlowNetwork> flows_;

  /// Records the current deepest server backlog into the gauge/samples.
  void note_backlog();

  std::vector<std::unique_ptr<FileState>> files_;
  std::vector<ServerState> servers_;
  std::int64_t global_clock_ = 0;  // cumulative traffic bytes (cache aging)
  Stats stats_;
  robust::SessionInjector* injector_ = nullptr;

  // Metric handles resolved once in set_metrics (see obs/metrics.hpp).
  obs::Registry* registry_ = nullptr;
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_bytes_written_ = nullptr;
  obs::Counter* m_bytes_read_ = nullptr;
  obs::Counter* m_cache_hits_ = nullptr;
  obs::Counter* m_cache_misses_ = nullptr;
  obs::Counter* m_rmw_chunks_ = nullptr;
  obs::Sum* m_seeks_ = nullptr;
  obs::Gauge* m_backlog_ = nullptr;
};

}  // namespace balbench::pfsim
