// pario: an MPI-I/O-style parallel file interface over pfsim.
//
// Implements the slice of MPI-2 I/O that b_eff_io exercises (paper
// Sec. 3.2 item 4): the three access methods (first write / rewrite /
// read), individual and shared file pointers, collective and
// non-collective coordination, blocking calls only, unique+nonatomic
// files.  Pattern types map to:
//
//   type 0  set_view_strided + write_all/read_all   (two-phase I/O)
//   type 1  write_ordered/read_ordered              (shared pointer)
//   type 2  open_private + write/read               (file per process)
//   type 3  write_at/read_at in per-rank segments   (individual ptr)
//   type 4  write_at_all/read_at_all in segments    (collective)
//
// This layer simulates timing; payload bytes are never stored, so all
// operations take byte counts instead of buffers.  It requires the
// simulation transport (a rank must be able to block in virtual time).
//
// Extension beyond the paper's release (its Sec. 5.3 "future" note):
// per-open Hints can force two-phase aggregation on or off, like an
// MPI_Info object.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "parmsg/comm.hpp"
#include "pfsim/filesystem.hpp"

namespace balbench::pario {

/// Shared I/O state for one SPMD run: the filesystem plus per-file
/// shared data (shared file pointers, open bookkeeping).  Create one
/// in SimTransport::run_with_setup and share it across ranks.
class IoContext {
 public:
  IoContext(simt::Engine& engine, const pfsim::IoSystemConfig& config,
            int num_clients)
      : fs_(engine, config, num_clients) {}

  [[nodiscard]] pfsim::FileSystem& fs() { return fs_; }
  [[nodiscard]] const pfsim::IoSystemConfig& config() const { return fs_.config(); }

 private:
  friend class File;
  struct SharedFile {
    pfsim::FileId id = 0;
    std::int64_t shared_pointer = 0;
    int open_count = 0;
  };
  std::shared_ptr<SharedFile> acquire(const std::string& name);
  void release(const std::shared_ptr<SharedFile>& sf);

  pfsim::FileSystem fs_;
  std::map<std::string, std::shared_ptr<SharedFile>> shared_;
};

enum class OpenMode { Create, ReadWrite, ReadOnly };

/// MPI_Info-style hints (paper Sec. 5.3: pattern-specific hints).
struct Hints {
  /// Override the platform default for collective two-phase buffering.
  std::optional<bool> two_phase;
};

class File {
 public:
  /// Collective open: every rank of `comm` participates.
  static File open(parmsg::Comm& comm, IoContext& ctx, const std::string& name,
                   OpenMode mode, Hints hints = {});
  /// Non-collective open of a rank-private file (pattern type 2).
  static File open_private(parmsg::Comm& comm, IoContext& ctx,
                           const std::string& name, OpenMode mode,
                           Hints hints = {});

  File(File&&) noexcept;
  File& operator=(File&&) = delete;
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File();

  /// Collective close (non-collective for private files).
  void close();

  // --- individual file pointer (non-collective) ----------------------
  void seek(std::int64_t offset);
  [[nodiscard]] std::int64_t tell() const { return pos_; }
  /// Write `bytes` at the individual pointer as `chunks` back-to-back
  /// accesses (chunks > 1 is the batched loop of DESIGN.md Sec. 6).
  void write(std::int64_t bytes, std::int64_t chunks = 1);
  void read(std::int64_t bytes, std::int64_t chunks = 1);

  // --- explicit offsets (non-collective; pattern type 3) -------------
  void write_at(std::int64_t offset, std::int64_t bytes, std::int64_t chunks = 1);
  void read_at(std::int64_t offset, std::int64_t bytes, std::int64_t chunks = 1);

  // --- shared file pointer, collective ordered (pattern type 1) ------
  /// All ranks write `bytes` each, in rank order, at the shared
  /// pointer.  The paper's implementations serialize the pointer
  /// update (a token circulates), which is what makes this pattern
  /// slow for small chunks.
  /// `calls` batches that many consecutive ordered library calls of
  /// bytes/calls each (deterministic fast-forward): the per-call token
  /// sweep of all ranks is charged for every batched call.
  void write_ordered(std::int64_t bytes, std::int64_t calls = 1);
  void read_ordered(std::int64_t bytes, std::int64_t calls = 1);
  /// Shared file pointer position / collective repositioning.
  [[nodiscard]] std::int64_t shared_position() const;
  void seek_shared(std::int64_t pos);

  // --- strided fileview, collective (pattern type 0) -----------------
  /// Each rank sees chunks of `disk_chunk` bytes at stride
  /// nprocs*disk_chunk, starting at rank*disk_chunk: the scatter view
  /// of Fig. 2 (left).
  void set_view_strided(std::int64_t disk_chunk);
  /// Current collective round base offset / reposition it (all ranks
  /// must pass the same value; used to re-read a file from the start).
  [[nodiscard]] std::int64_t view_position() const { return view_pos_; }
  void seek_view(std::int64_t pos);
  /// Collectively transfer `mem_bytes` per rank through the view.
  /// With two-phase enabled this becomes one large aggregated request
  /// per rank; otherwise every disk chunk is its own access.
  /// `calls` batches that many collective calls of mem_bytes/calls.
  void write_all(std::int64_t mem_bytes, std::int64_t calls = 1);
  void read_all(std::int64_t mem_bytes, std::int64_t calls = 1);

  // --- explicit offsets, collective (pattern type 4) ------------------
  /// `chunks` doubles as the batched call count (one call per chunk,
  /// as in the segmented patterns where L := l).
  void write_at_all(std::int64_t offset, std::int64_t bytes, std::int64_t chunks = 1);
  void read_at_all(std::int64_t offset, std::int64_t bytes, std::int64_t chunks = 1);

  /// MPI_File_sync, collective: all dirty data of this file reaches
  /// disk before any rank returns.
  void sync();

  [[nodiscard]] std::int64_t size() const;
  [[nodiscard]] bool is_open() const { return shared_ != nullptr; }

 private:
  File(parmsg::Comm& comm, IoContext& ctx, std::shared_ptr<IoContext::SharedFile> sf,
       bool collective, bool two_phase);

  /// Block the calling rank until the filesystem request completes.
  void submit_blocking(const pfsim::FileSystem::Request& req);
  void transfer_view(std::int64_t mem_bytes, std::int64_t calls, bool write);
  void transfer_ordered(std::int64_t bytes, std::int64_t calls, bool write);
  void transfer_at_all(std::int64_t offset, std::int64_t bytes, std::int64_t chunks,
                       bool write);
  void charge_call_overhead(std::int64_t chunks);

  parmsg::Comm* comm_ = nullptr;
  IoContext* ctx_ = nullptr;
  std::shared_ptr<IoContext::SharedFile> shared_;
  bool collective_ = true;
  bool two_phase_ = true;
  std::int64_t pos_ = 0;        // individual file pointer
  std::int64_t view_chunk_ = 0; // 0 = contiguous view
  std::int64_t view_pos_ = 0;   // next collective round base offset
};

}  // namespace balbench::pario
