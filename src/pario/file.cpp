#include "pario/file.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "parmsg/sim_transport.hpp"

namespace balbench::pario {

namespace {

parmsg::SimComm& sim_comm(parmsg::Comm& c) {
  auto* sim = dynamic_cast<parmsg::SimComm*>(&c);
  if (sim == nullptr) {
    throw std::logic_error(
        "pario requires the simulation transport (ranks must block in "
        "virtual time)");
  }
  return *sim;
}

}  // namespace

// ---------------------------------------------------------------------------
// IoContext
// ---------------------------------------------------------------------------

std::shared_ptr<IoContext::SharedFile> IoContext::acquire(const std::string& name) {
  auto& slot = shared_[name];
  if (!slot) {
    slot = std::make_shared<SharedFile>();
    slot->id = fs_.open(name);
  }
  ++slot->open_count;
  return slot;
}

void IoContext::release(const std::shared_ptr<SharedFile>& sf) {
  if (sf) --sf->open_count;
}

// ---------------------------------------------------------------------------
// File
// ---------------------------------------------------------------------------

File::File(parmsg::Comm& comm, IoContext& ctx,
           std::shared_ptr<IoContext::SharedFile> sf, bool collective,
           bool two_phase)
    : comm_(&comm), ctx_(&ctx), shared_(std::move(sf)), collective_(collective),
      two_phase_(two_phase) {}

File::File(File&& other) noexcept
    : comm_(other.comm_), ctx_(other.ctx_), shared_(std::move(other.shared_)),
      collective_(other.collective_), two_phase_(other.two_phase_),
      pos_(other.pos_), view_chunk_(other.view_chunk_), view_pos_(other.view_pos_) {
  other.shared_ = nullptr;
}

File::~File() {
  // Deliberately no implicit close: closing is collective and must not
  // happen from a destructor at unwinding time.  Leaked handles only
  // leak bookkeeping.
  if (shared_) ctx_->release(shared_);
}

File File::open(parmsg::Comm& comm, IoContext& ctx, const std::string& name,
                OpenMode mode, Hints hints) {
  comm.barrier();
  comm.advance(ctx.config().open_close_overhead);
  const bool two_phase =
      hints.two_phase.value_or(ctx.config().collective_two_phase);
  File f(comm, ctx, ctx.acquire(name), /*collective=*/true, two_phase);
  if (mode == OpenMode::Create && comm.rank() == 0) {
    // MPI_MODE_CREATE semantics for the benchmark: reopening for an
    // initial write starts from an empty file.
    ctx.fs_.truncate(f.shared_->id);
    f.shared_->shared_pointer = 0;
  }
  comm.barrier();
  return f;
}

File File::open_private(parmsg::Comm& comm, IoContext& ctx,
                        const std::string& name, OpenMode mode, Hints hints) {
  comm.advance(ctx.config().open_close_overhead);
  const bool two_phase =
      hints.two_phase.value_or(ctx.config().collective_two_phase);
  File f(comm, ctx, ctx.acquire(name), /*collective=*/false, two_phase);
  if (mode == OpenMode::Create) {
    ctx.fs_.truncate(f.shared_->id);
    f.shared_->shared_pointer = 0;
  }
  return f;
}

void File::close() {
  if (!shared_) throw std::logic_error("File::close: already closed");
  comm_->advance(ctx_->config().open_close_overhead);
  if (collective_) comm_->barrier();
  ctx_->release(shared_);
  shared_ = nullptr;
}

std::int64_t File::size() const {
  if (!shared_) throw std::logic_error("File::size: file closed");
  return ctx_->fs_.file_size(shared_->id);
}

void File::seek(std::int64_t offset) {
  if (offset < 0) throw std::invalid_argument("File::seek: negative offset");
  pos_ = offset;
}

void File::charge_call_overhead(std::int64_t chunks) {
  comm_->advance(ctx_->config().request_overhead * static_cast<double>(chunks));
}

void File::submit_blocking(const pfsim::FileSystem::Request& req) {
  auto& sim = sim_comm(*comm_);
  simt::Process& proc = sim.process();
  const double t0 = sim.wtime();
  bool done = false;
  ctx_->fs_.submit(req, [&done, &proc] {
    done = true;
    proc.wake();
  });
  while (!done) proc.block();
  if (auto* tracer = sim.tracer()) {
    tracer->record(t0, sim.wtime(), comm_->rank(), req.write ? 'W' : 'R');
  }
  if (auto* m = sim.metrics()) {
    // Units: simulated bytes; `pario.call_seconds` observes the
    // *virtual* wall time of one blocking library call (includes queue
    // wait at the servers, not just transfer).
    m->counter("pario.calls").add(static_cast<std::uint64_t>(req.chunks));
    m->counter(req.write ? "pario.bytes_written" : "pario.bytes_read")
        .add(static_cast<std::uint64_t>(req.bytes));
    m->histogram("pario.call_seconds").observe(sim.wtime() - t0);
  }
}

void File::write(std::int64_t bytes, std::int64_t chunks) {
  write_at(pos_, bytes, chunks);
  pos_ += bytes;
}

void File::read(std::int64_t bytes, std::int64_t chunks) {
  read_at(pos_, bytes, chunks);
  pos_ += bytes;
}

void File::write_at(std::int64_t offset, std::int64_t bytes, std::int64_t chunks) {
  if (!shared_) throw std::logic_error("File::write_at: file closed");
  charge_call_overhead(chunks);
  submit_blocking({.client = comm_->rank(), .file = shared_->id, .offset = offset,
                   .bytes = bytes, .chunks = chunks, .write = true});
}

void File::read_at(std::int64_t offset, std::int64_t bytes, std::int64_t chunks) {
  if (!shared_) throw std::logic_error("File::read_at: file closed");
  charge_call_overhead(chunks);
  submit_blocking({.client = comm_->rank(), .file = shared_->id, .offset = offset,
                   .bytes = bytes, .chunks = chunks, .write = false});
}

// --- shared file pointer (pattern type 1) -----------------------------

void File::transfer_ordered(std::int64_t bytes, std::int64_t calls, bool write) {
  if (!shared_) throw std::logic_error("File::*_ordered: file closed");
  const int p = comm_->size();
  const int rank = comm_->rank();
  // Every rank must pass the same byte count for ordered access.
  const double check = comm_->allreduce_max(static_cast<double>(bytes));
  if (check != static_cast<double>(bytes)) {
    throw std::invalid_argument("ordered access requires a uniform byte count");
  }
  const std::int64_t base = shared_->shared_pointer;
  // The shared pointer update circulates as a token through the ranks
  // (paper Sec. 5.1 discussion: this is why shared-pointer patterns
  // lag): rank r may start its transfer only after r token updates,
  // and every batched call repeats the full sweep of all p ranks.
  const double spo = ctx_->config().shared_pointer_overhead;
  comm_->advance(static_cast<double>(rank + 1) * spo +
                 static_cast<double>(calls - 1) * static_cast<double>(p) * spo);
  charge_call_overhead(calls);
  submit_blocking({.client = rank, .file = shared_->id,
                   .offset = base + rank * bytes, .bytes = bytes,
                   .chunks = calls, .write = write});
  comm_->barrier();
  shared_->shared_pointer = base + static_cast<std::int64_t>(p) * bytes;
  comm_->barrier();
}

std::int64_t File::shared_position() const {
  if (!shared_) throw std::logic_error("File::shared_position: file closed");
  return shared_->shared_pointer;
}

void File::seek_shared(std::int64_t pos) {
  if (!shared_) throw std::logic_error("File::seek_shared: file closed");
  if (pos < 0) throw std::invalid_argument("File::seek_shared: negative");
  comm_->barrier();
  shared_->shared_pointer = pos;
  comm_->barrier();
}

void File::write_ordered(std::int64_t bytes, std::int64_t calls) {
  transfer_ordered(bytes, calls, /*write=*/true);
}

void File::read_ordered(std::int64_t bytes, std::int64_t calls) {
  transfer_ordered(bytes, calls, /*write=*/false);
}

// --- strided fileview (pattern type 0) ---------------------------------

void File::set_view_strided(std::int64_t disk_chunk) {
  if (disk_chunk <= 0) throw std::invalid_argument("set_view_strided: chunk <= 0");
  view_chunk_ = disk_chunk;
  // view_pos_ is deliberately preserved: b_eff_io switches views
  // between patterns of one open file, and "the alignment is
  // implicitly defined by the data written by all previous patterns"
  // (paper, Table 2 footnote).
}

void File::seek_view(std::int64_t pos) {
  if (pos < 0) throw std::invalid_argument("File::seek_view: negative");
  view_pos_ = pos;
}

void File::transfer_view(std::int64_t mem_bytes, std::int64_t calls, bool write) {
  if (!shared_) throw std::logic_error("File::*_all: file closed");
  if (view_chunk_ <= 0) {
    throw std::logic_error("File::*_all: set_view_strided first");
  }
  const int p = comm_->size();
  const int rank = comm_->rank();
  const std::int64_t chunks = std::max<std::int64_t>(1, mem_bytes / view_chunk_);
  const std::int64_t round = static_cast<std::int64_t>(p) * mem_bytes;
  const std::int64_t base = view_pos_;

  comm_->barrier();  // collective entry
  // Each batched collective call repeats the coordination handshake.
  if (calls > 1) {
    comm_->advance(static_cast<double>(calls - 1) *
                   ctx_->config().shared_pointer_overhead);
  }
  charge_call_overhead(calls);

  if (two_phase_) {
    // Two-phase I/O with a bounded aggregator set (ROMIO's cb_nodes):
    // every rank ships its call payload over the machine network to
    // its collective-buffering aggregator; the aggregators then issue
    // one large contiguous, aligned file access each.
    const int naggr =
        std::max(1, std::min(p, 2 * ctx_->config().num_servers));
    const int my_aggr = rank % naggr;
    constexpr int kShuffleTag = -1003;
    const std::int64_t round_bytes = static_cast<std::int64_t>(p) * mem_bytes;
    if (rank >= naggr) {
      if (write) {
        comm_->send(my_aggr, nullptr, static_cast<std::size_t>(mem_bytes),
                    kShuffleTag);
      }
    }
    if (rank < naggr) {
      // Collect the group's chunks (phase one)...
      for (int peer = rank + naggr; peer < p; peer += naggr) {
        if (write) {
          comm_->recv(peer, nullptr, static_cast<std::size_t>(mem_bytes),
                      kShuffleTag);
        }
      }
      // ... and access the aggregator's contiguous span (phase two).
      // File domains are aligned to the striping unit, as ROMIO's
      // collective buffering does.
      const std::int64_t su = ctx_->config().stripe_unit;
      const std::int64_t share =
          (round_bytes / naggr + su - 1) / su * su;
      const std::int64_t my_off = rank * share;
      const std::int64_t my_bytes =
          std::max<std::int64_t>(0, std::min(share, round_bytes - my_off));
      const std::int64_t my_chunks =
          std::max<std::int64_t>(1, chunks * p / naggr);
      if (my_bytes > 0) {
        submit_blocking({.client = rank, .file = shared_->id,
                         .offset = base + my_off, .bytes = my_bytes,
                         .chunks = my_chunks, .write = write, .aggregated = true});
      }
      // Reads distribute the data back to the group.
      for (int peer = rank + naggr; peer < p; peer += naggr) {
        if (!write) {
          comm_->send(peer, nullptr, static_cast<std::size_t>(mem_bytes),
                      kShuffleTag);
        }
      }
    } else if (!write) {
      comm_->recv(my_aggr, nullptr, static_cast<std::size_t>(mem_bytes),
                  kShuffleTag);
    }
  } else {
    // Naive strided access: every view chunk is its own disk access.
    submit_blocking({.client = rank, .file = shared_->id,
                     .offset = base + rank * view_chunk_, .bytes = mem_bytes,
                     .chunks = chunks, .write = write, .aggregated = false});
  }
  comm_->barrier();  // collective exit
  view_pos_ = base + round;
}

void File::write_all(std::int64_t mem_bytes, std::int64_t calls) {
  transfer_view(mem_bytes, calls, true);
}
void File::read_all(std::int64_t mem_bytes, std::int64_t calls) {
  transfer_view(mem_bytes, calls, false);
}

// --- collective explicit offsets (pattern type 4) -----------------------

void File::transfer_at_all(std::int64_t offset, std::int64_t bytes,
                           std::int64_t chunks, bool write) {
  if (!shared_) throw std::logic_error("File::*_at_all: file closed");
  comm_->barrier();  // collective entry
  const bool optimized = ctx_->config().optimized_segmented_collective;
  constexpr int kTokenTag = -1002;  // internal tag space
  if (!optimized && comm_->rank() > 0) {
    // Unoptimized collective path (the IBM SP prototype, paper
    // Sec. 5.3): the library processes the ranks' regions one after
    // the other -- the whole collective call is serialized, which is
    // what makes this pattern type "more than a factor of 10 worse"
    // than its non-collective twin on larger partitions.
    comm_->recv(comm_->rank() - 1, nullptr, 1, kTokenTag);
  }
  if (!optimized) {
    comm_->advance(2.0 * ctx_->config().shared_pointer_overhead *
                   static_cast<double>(chunks));
  }
  charge_call_overhead(chunks);
  submit_blocking({.client = comm_->rank(), .file = shared_->id, .offset = offset,
                   .bytes = bytes, .chunks = chunks, .write = write});
  if (!optimized && comm_->rank() + 1 < comm_->size()) {
    comm_->send(comm_->rank() + 1, nullptr, 1, kTokenTag);
  }
  comm_->barrier();  // collective exit
}

void File::write_at_all(std::int64_t offset, std::int64_t bytes, std::int64_t chunks) {
  transfer_at_all(offset, bytes, chunks, /*write=*/true);
}

void File::read_at_all(std::int64_t offset, std::int64_t bytes, std::int64_t chunks) {
  transfer_at_all(offset, bytes, chunks, /*write=*/false);
}

void File::sync() {
  if (!shared_) throw std::logic_error("File::sync: file closed");
  if (collective_) comm_->barrier();
  auto& sim = sim_comm(*comm_);
  simt::Process& proc = sim.process();
  bool done = false;
  ctx_->fs_.sync(shared_->id, [&done, &proc] {
    done = true;
    proc.wake();
  });
  while (!done) proc.block();
  if (auto* m = sim.metrics()) m->counter("pario.syncs").add(1);
  if (collective_) comm_->barrier();
}

}  // namespace balbench::pario
