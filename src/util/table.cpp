#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace balbench::util {

namespace {

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{Row::Kind::Cells, std::move(cells), {}});
}

void Table::add_separator() {
  rows_.push_back(Row{Row::Kind::Separator, {}, {}});
}

void Table::add_section(std::string label) {
  rows_.push_back(Row{Row::Kind::Section, {}, std::move(label)});
}

void Table::render(std::ostream& os) const {
  const std::size_t ncols = headers_.size();

  // Header lines (split on '\n').
  std::vector<std::vector<std::string>> header_lines(ncols);
  std::size_t header_height = 0;
  for (std::size_t c = 0; c < ncols; ++c) {
    header_lines[c] = split_lines(headers_[c]);
    header_height = std::max(header_height, header_lines[c].size());
  }

  // Column widths.
  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < ncols; ++c) {
    for (const auto& line : header_lines[c]) width[c] = std::max(width[c], line.size());
  }
  for (const auto& row : rows_) {
    if (row.kind != Row::Kind::Cells) continue;
    for (std::size_t c = 0; c < ncols; ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  std::size_t total = 0;
  for (std::size_t c = 0; c < ncols; ++c) total += width[c] + 3;
  ++total;

  auto hline = [&] { os << std::string(total, '-') << '\n'; };

  auto emit_cells = [&](const std::vector<std::string>& cells, bool left_align) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = width[c] - std::min(width[c], cell.size());
      if (left_align) {
        os << ' ' << cell << std::string(pad, ' ') << " |";
      } else {
        os << ' ' << std::string(pad, ' ') << cell << " |";
      }
    }
    os << '\n';
  };

  hline();
  for (std::size_t l = 0; l < header_height; ++l) {
    std::vector<std::string> line(ncols);
    for (std::size_t c = 0; c < ncols; ++c) {
      if (l < header_lines[c].size()) line[c] = header_lines[c][l];
    }
    emit_cells(line, /*left_align=*/true);
  }
  hline();

  for (const auto& row : rows_) {
    switch (row.kind) {
      case Row::Kind::Cells:
        emit_cells(row.cells, /*left_align=*/false);
        break;
      case Row::Kind::Separator:
        hline();
        break;
      case Row::Kind::Section: {
        os << "| " << row.label;
        const std::size_t used = 2 + row.label.size();
        if (used + 1 < total) os << std::string(total - used - 1, ' ');
        os << "|\n";
        break;
      }
    }
  }
  hline();
}

std::string Table::to_string() const {
  std::ostringstream oss;
  render(oss);
  return oss.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  return buf;
}

std::string fmt(int value) { return fmt(static_cast<std::int64_t>(value)); }

}  // namespace balbench::util
