// Deterministic pseudo-random number generation.
//
// The b_eff "random polygon" patterns permute process ranks randomly.
// Reproducible benchmark runs need a seedable, platform-independent
// generator, so we ship a small xoshiro256** implementation instead of
// relying on std::default_random_engine (which is
// implementation-defined) or std::shuffle's distribution behaviour.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace balbench::util {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      w = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n) via Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t n) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

/// Fisher-Yates permutation of 0..n-1, deterministic for a given seed.
inline std::vector<int> random_permutation(int n, Xoshiro256& rng) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<int>(rng.below(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

}  // namespace balbench::util
