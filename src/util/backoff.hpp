// Capped exponential backoff, shared by every retry loop.
//
// Two very different layers want the same schedule: the robustness
// layer's per-cell retry (src/robust/retry.hpp) books virtual-time
// backoff seconds into degraded records, and the balbench-serve client
// really sleeps host seconds between reconnect attempts to a crashed
// or draining server.  The schedule lives here once so the two can
// never drift: attempt k (1-based) waits min(cap_s, base_s * 2^(k-1)).
#pragma once

namespace balbench::util {

struct Backoff {
  double base_s = 0.25;  // delay after the first failed attempt
  double cap_s = 8.0;    // exponential growth saturates here

  /// Delay after failed attempt `attempt` (1-based):
  /// min(cap_s, base_s * 2^(attempt-1)).  Attempts below 1 are treated
  /// as 1, so a defensive caller can never produce a huge 2^-k delay
  /// overflowing into zero or a negative shift.
  [[nodiscard]] double delay_for(int attempt) const;
};

}  // namespace balbench::util
