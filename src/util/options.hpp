// Minimal command-line option parser for the bench/example binaries.
//
// Supports "--name value", "--name=value" and boolean "--flag".
// Unknown options raise an error listing the registered ones, so every
// binary gets a usable --help for free.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace balbench::util {

class Options {
 public:
  explicit Options(std::string program_description);

  void add_flag(const std::string& name, bool* target, const std::string& help);
  void add_int(const std::string& name, std::int64_t* target, const std::string& help);
  void add_double(const std::string& name, double* target, const std::string& help);
  void add_string(const std::string& name, std::string* target, const std::string& help);

  /// Registers the standard `--jobs N` option: worker threads for the
  /// parallel sweep scheduler (util/parallel.hpp).  `what` names the
  /// sweep being parallelized (shown in --help).  The scheduler's
  /// ordered reduction guarantees byte-identical output for every N;
  /// 0 means "all hardware threads", 1 restores serial execution.
  void add_jobs(std::int64_t* target, const std::string& what);

  /// Accepts positional (non "--") arguments, collected into `target`
  /// in command-line order.  `name` is the metavar shown in --help
  /// (e.g. "FILE").  Without this registration positionals stay an
  /// error, so existing binaries keep rejecting stray arguments.
  void add_positionals(std::vector<std::string>* target,
                       const std::string& name, const std::string& help);

  /// Parses argv.  Returns false if --help was requested (help text is
  /// printed to stdout).  Throws std::invalid_argument on bad input.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string help() const;

 private:
  struct Spec {
    enum class Kind { Flag, Int, Double, String } kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  void add(const std::string& name, Spec spec);
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;
  std::vector<std::string>* positionals_ = nullptr;
  std::string positional_name_;
  std::string positional_help_;
};

}  // namespace balbench::util
