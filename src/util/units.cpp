#include "util/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace balbench::util {

std::string format_bytes(std::int64_t bytes) {
  char buf[64];
  if (bytes >= kGiB && bytes % kGiB == 0) {
    std::snprintf(buf, sizeof buf, "%lld GB", static_cast<long long>(bytes / kGiB));
  } else if (bytes >= kMiB && bytes % kMiB == 0) {
    std::snprintf(buf, sizeof buf, "%lld MB", static_cast<long long>(bytes / kMiB));
  } else if (bytes >= kKiB && bytes % kKiB == 0) {
    std::snprintf(buf, sizeof buf, "%lld kB", static_cast<long long>(bytes / kKiB));
  } else {
    std::snprintf(buf, sizeof buf, "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

std::string format_chunk_label(std::int64_t bytes) {
  if (bytes > 8 && is_wellformed(bytes - 8)) {
    return format_bytes(bytes - 8) + "+8";
  }
  return format_bytes(bytes);
}

std::string format_mbps(double bytes_per_second, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision,
                bytes_per_second / static_cast<double>(kMiB));
  return buf;
}

std::int64_t parse_bytes(const std::string& text) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_bytes: not a number: '" + text + "'");
  }
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  double mult = 1.0;
  if (pos < text.size()) {
    switch (std::tolower(static_cast<unsigned char>(text[pos]))) {
      case 'k': mult = static_cast<double>(kKiB); ++pos; break;
      case 'm': mult = static_cast<double>(kMiB); ++pos; break;
      case 'g': mult = static_cast<double>(kGiB); ++pos; break;
      case 'b': break;
      default:
        throw std::invalid_argument("parse_bytes: bad unit in '" + text + "'");
    }
  }
  // Optional trailing 'B' / "iB".
  while (pos < text.size()) {
    char c = static_cast<char>(std::tolower(static_cast<unsigned char>(text[pos])));
    if (c == 'b' || c == 'i' || std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
    } else {
      throw std::invalid_argument("parse_bytes: trailing junk in '" + text + "'");
    }
  }
  return static_cast<std::int64_t>(value * mult);
}

bool is_wellformed(std::int64_t bytes) {
  return bytes > 0 && (bytes & (bytes - 1)) == 0;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds >= 120.0) {
    std::snprintf(buf, sizeof buf, "%.1f min", seconds / 60.0);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.1f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace balbench::util
