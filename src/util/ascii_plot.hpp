// Terminal line plots for the paper's figures.
//
// Figures 1, 3, 4 and 5 are bar/line charts.  The bench binaries print
// the raw series (for gnuplot-style post-processing) *and* a quick
// ASCII rendering so the shape of each figure is visible directly in
// the benchmark log.  Supports linear and logarithmic y-axes and
// pseudo-logarithmic categorical x-axes (the paper plots chunk sizes
// "1k 1k+8 32k 32k+8 1M 1M+8 ..." equidistantly).
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace balbench::util {

struct Series {
  std::string name;
  char marker = '*';
  /// y values aligned with the plot's category labels; NaN = missing.
  std::vector<double> values;
};

class AsciiPlot {
 public:
  struct Options {
    int width = 72;          // plot area columns
    int height = 18;         // plot area rows
    bool log_y = false;      // logarithmic y axis
    std::string y_label;     // e.g. "MB/s"
    std::string title;
    double y_min_hint = 0.0; // force-include this value in the range
  };

  AsciiPlot(std::vector<std::string> x_labels, Options opts);

  void add_series(Series s);

  void render(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> x_labels_;
  Options opts_;
  std::vector<Series> series_;
};

/// Horizontal bar chart (used for Fig. 1, balance factors).
class AsciiBarChart {
 public:
  explicit AsciiBarChart(std::string title, int width = 60);
  void add_bar(std::string label, double value, std::string annotation = {});
  void render(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  struct Bar {
    std::string label;
    double value;
    std::string annotation;
  };
  std::string title_;
  int width_;
  std::vector<Bar> bars_;
};

}  // namespace balbench::util
