#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace balbench::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double logavg(std::span<const double> xs, double floor) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += std::log(std::max(x, floor));
  return std::exp(s / static_cast<double>(xs.size()));
}

double logavg2(double a, double b, double floor) {
  const double xs[] = {a, b};
  return logavg(xs, floor);
}

double maximum(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double minimum(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
  double sw = 0.0;
  double sxw = 0.0;
  const std::size_t n = std::min(xs.size(), ws.size());
  for (std::size_t i = 0; i < n; ++i) {
    sxw += xs[i] * ws[i];
    sw += ws[i];
  }
  return sw > 0.0 ? sxw / sw : 0.0;
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

}  // namespace balbench::util
