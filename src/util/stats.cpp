#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace balbench::util {

namespace {

/// Median of a scratch vector, destroying its order.
double median_inplace(std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo = *std::max_element(
      v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double logavg(std::span<const double> xs, double floor) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += std::log(std::max(x, floor));
  return std::exp(s / static_cast<double>(xs.size()));
}

double logavg2(double a, double b, double floor) {
  const double xs[] = {a, b};
  return logavg(xs, floor);
}

double maximum(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double minimum(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
  double sw = 0.0;
  double sxw = 0.0;
  const std::size_t n = std::min(xs.size(), ws.size());
  for (std::size_t i = 0; i < n; ++i) {
    sxw += xs[i] * ws[i];
    sw += ws[i];
  }
  return sw > 0.0 ? sxw / sw : 0.0;
}

double median(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  return median_inplace(v);
}

double mad(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double med = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::fabs(x - med));
  return median_inplace(dev);
}

RobustSummary robust_summary(std::span<const double> xs, int resamples,
                             std::uint64_t seed) {
  RobustSummary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.median = median(xs);
  s.mad = mad(xs);
  s.min = minimum(xs);
  s.max = maximum(xs);
  if (xs.size() == 1 || resamples < 2) {
    s.ci_lo = s.min;
    s.ci_hi = s.max;
    return s;
  }
  Xoshiro256 rng(seed);
  std::vector<double> draw(xs.size());
  std::vector<double> medians;
  medians.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (double& d : draw) d = xs[rng.below(xs.size())];
    medians.push_back(median_inplace(draw));
  }
  std::sort(medians.begin(), medians.end());
  // Nearest-rank percentiles of the bootstrap distribution.
  const auto rank = [&](double p) {
    const auto i = static_cast<std::size_t>(
        p * static_cast<double>(medians.size() - 1) + 0.5);
    return medians[std::min(i, medians.size() - 1)];
  };
  s.ci_lo = rank(0.025);
  s.ci_hi = rank(0.975);
  return s;
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

}  // namespace balbench::util
