// Crash-safe whole-file writes: tmp + fsync + rename.
//
// Every JSON artifact this repo emits (run records, perf records,
// Chrome traces, wall profiles, checkpoint journals) is either byte-
// compared by tests or read back by a later invocation, so a Ctrl-C or
// SIGKILL mid-write must never leave a truncated file behind.  The
// bytes land in a temporary file in the target's directory, are
// fsync'd, and the temporary is rename(2)d over the target -- readers
// observe either the old complete file or the new complete file,
// never a prefix (DESIGN.md Sec. 12.3).
#pragma once

#include <string>
#include <string_view>

namespace balbench::util {

/// Atomically replaces `path` with `content`.  The temporary file is
/// created next to `path` (rename is only atomic within one
/// filesystem) and removed on failure.  Throws std::runtime_error
/// with errno context if any syscall fails.
void atomic_write(const std::string& path, std::string_view content);

}  // namespace balbench::util
