// Crash-safe whole-file writes: tmp + fsync + rename.
//
// Every JSON artifact this repo emits (run records, perf records,
// Chrome traces, wall profiles, checkpoint journals) is either byte-
// compared by tests or read back by a later invocation, so a Ctrl-C or
// SIGKILL mid-write must never leave a truncated file behind.  The
// bytes land in a temporary file in the target's directory, are
// fsync'd, and the temporary is rename(2)d over the target -- readers
// observe either the old complete file or the new complete file,
// never a prefix (DESIGN.md Sec. 12.3).
//
// Guarantee actually provided (be precise -- the serve result cache
// journals through this):
//
//   * Atomicity, always: any reader, before or after any crash, sees
//     a complete old file or a complete new file, never a mix or a
//     prefix.  This needs only rename(2) semantics.
//   * Durability, on ext4-like filesystems: the parent directory is
//     fsync'd after the rename, so once atomic_write returns, the NEW
//     content survives a power failure.  Without that directory sync a
//     crash immediately after commit can revert the rename -- the file
//     silently reads as its previous version again.
//   * On filesystems that refuse O_DIRECTORY opens for fsync (some
//     network/FUSE mounts), the directory sync is skipped: atomicity
//     holds, but the rename may be reverted by a crash.  Callers that
//     must detect this (the serve cache) pair the write with a
//     content hash in a separately-journaled index.
#pragma once

#include <string>
#include <string_view>

namespace balbench::util {

/// Atomically replaces `path` with `content`.  The temporary file is
/// created next to `path` (rename is only atomic within one
/// filesystem) and removed on failure.  Throws std::runtime_error
/// with errno context if any syscall fails.
void atomic_write(const std::string& path, std::string_view content);

}  // namespace balbench::util
