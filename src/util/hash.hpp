// FNV-1a 64-bit hashing, shared by every config-hash producer.
//
// Both run records ("balbench-run-record/1") and perf records
// ("balbench-perf-record/1") stamp an FNV-1a hash of their canonical
// configuration description so a record can be matched to the exact
// configuration that produced it (DESIGN.md Sec. 10.4/11).  The
// algorithm lives here once so the two schemas can never drift apart.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace balbench::util {

/// FNV-1a, 64 bit, over the raw bytes of `text`.
constexpr std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// The 16-digit lowercase-hex form stamped into records.
inline std::string fnv1a_hex(std::string_view text) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a(text)));
  return buf;
}

}  // namespace balbench::util
