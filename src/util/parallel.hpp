// Work-stealing parallel sweep scheduler.
//
// The benchmark suite is a large space of *independent simulation
// cells* (pattern x size x method for b_eff, pattern-type chains for
// b_eff_io, machine x partition for the bench drivers).  Every cell is
// a pure function of its inputs -- the simt engine consults no wall
// clock and breaks ties deterministically -- so cells may execute on
// any host thread in any order without changing a single reported
// number, PROVIDED that
//
//   1. no two cells share mutable state (each cell constructs its own
//      simt::Engine / transport), and
//   2. results are collected into pre-sized slots indexed by cell id
//      and reduced in index order afterwards (ordered reduction).
//
// ThreadPool implements classic work stealing: each worker owns a
// deque seeded with a contiguous block of cell indices; it pops work
// from the front of its own deque and, when empty, steals from the
// *back* of a victim's deque.  Blocks keep neighbouring (similar-cost)
// cells on one worker; stealing rebalances the inevitably uneven tail
// (a 512-process T3E cell costs orders of magnitude more than a
// 2-process SX-5 cell).
//
// Exceptions: every cell runs to completion regardless of failures
// elsewhere; the exception of the *lowest-indexed* failing cell is
// rethrown from parallel_for, so error reporting is as deterministic
// as the results.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace balbench::util {

/// Host-side scheduler telemetry sink (wall-clock observability,
/// DESIGN.md Sec. 11).  Everything delivered here is host-side --
/// wall-clock seconds from util::wall_now(), worker ids, steal flags
/// -- and per the determinism invariant of Sec. 10.2 none of it may
/// ever flow into a run record or any byte-compared output; observers
/// report to stderr or to wall-profile files only.  obs::prof::Profiler
/// is the canonical implementation.
///
/// Threading: on_batch_begin/on_batch_end fire on the thread calling
/// parallel_for; on_task/on_drain fire concurrently from worker
/// threads.  Implementations must be thread-safe.  An attached
/// observer must outlive every ThreadPool that ran while it was
/// attached (the pool destructor joins its workers, so destroying the
/// pool first is always safe; the transient pools of the free
/// parallel_for are joined before it returns).
class PoolObserver {
 public:
  virtual ~PoolObserver() = default;
  /// A parallel_for batch of `n` tasks is starting on `workers` workers.
  virtual void on_batch_begin(std::uint64_t batch, std::size_t n, int workers,
                              double start_seconds) {
    (void)batch, (void)n, (void)workers, (void)start_seconds;
  }
  virtual void on_batch_end(std::uint64_t batch, double end_seconds) {
    (void)batch, (void)end_seconds;
  }
  /// body(index) ran on `worker` from start to end; `stolen` means it
  /// executed outside the shard it was seeded into.  Emitted strictly
  /// before the task is counted as complete, so every on_task call
  /// happens-before the owning parallel_for returns -- idle and
  /// queue-wait time are therefore derivable as
  /// workers x batch wall - sum(task durations) without any further
  /// callback racing batch completion.
  virtual void on_task(std::uint64_t batch, std::size_t index, int worker,
                       bool stolen, double start_seconds, double end_seconds) {
    (void)batch, (void)index, (void)worker, (void)stolen;
    (void)start_seconds, (void)end_seconds;
  }
  /// body(index) threw on `worker`; `attempt` counts from 1 and `what`
  /// carries the exception message.  Return true to re-run the task in
  /// place on the same worker (the pool itself never tears down on a
  /// task exception either way); return false to let the batch record
  /// the failure and continue draining.  The default declines the
  /// retry, preserving the lowest-index-rethrow contract.  Fires
  /// concurrently from worker threads like on_task.
  virtual bool on_task_failure(std::uint64_t batch, std::size_t index,
                               int worker, int attempt, const char* what) {
    (void)batch, (void)index, (void)worker, (void)attempt, (void)what;
    return false;
  }
};

/// Attaches the process-wide scheduler observer (nullptr detaches).
/// Pools re-read the pointer at every parallel_for, so attaching
/// before a sweep instruments even long-lived pools.  Detached is the
/// default and costs one relaxed atomic load per batch -- task bodies
/// pay nothing.
void set_pool_observer(PoolObserver* observer);
[[nodiscard]] PoolObserver* pool_observer();

/// Number of hardware threads, at least 1.
int hardware_jobs();

/// Resolve a user-supplied --jobs value: <= 0 means "use the hardware
/// concurrency", anything else is taken literally.
int resolve_jobs(std::int64_t requested);

class ThreadPool {
 public:
  /// Creates `workers` worker threads (clamped to >= 1).  A pool of
  /// one worker executes everything inline on the calling thread --
  /// `--jobs 1` is exactly the serial program.
  explicit ThreadPool(int workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(0) .. body(n-1), distributing indices over the workers
  /// with work stealing.  Blocks until all n calls completed.  If any
  /// call throws, the exception of the lowest failing index is
  /// rethrown after the batch drained.  Reentrant calls (parallel_for
  /// from inside a body) are not supported.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  [[nodiscard]] int workers() const { return workers_; }
  /// Indices executed by a thread other than the one whose deque they
  /// were seeded into (diagnostic; 0 in serial pools).
  [[nodiscard]] std::uint64_t steals() const;

  /// Host-side execution statistics.  These describe how the *host*
  /// scheduled the work (they vary with --jobs, machine load and luck),
  /// so per the determinism invariant of DESIGN.md Sec. 10.2 they must
  /// never flow into an obs::Registry that feeds a run record --
  /// balbench-report prints them to stderr only.
  struct Stats {
    std::uint64_t tasks_executed = 0;  // body() invocations completed
    std::uint64_t steals = 0;          // cross-worker migrations
    std::uint64_t batches = 0;         // parallel_for calls served
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Impl;
  Impl* impl_;
  int workers_;
};

/// One-shot convenience: run body(0..n-1) on `jobs` threads.
void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Fill a pre-sized slot vector -- out[i] = fn(i) -- in parallel.  The
/// returned vector is indexed by cell id, so any subsequent reduction
/// that walks it front to back is independent of execution order.
template <typename T, typename Fn>
std::vector<T> parallel_map(int jobs, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(jobs, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Deterministic ordered reduction over slot-indexed results: combines
/// slots strictly in index order, so the result is byte-identical for
/// every worker count (floating-point addition is not associative --
/// reduction order must never depend on completion order).
template <typename T, typename R, typename Fn>
R ordered_reduce(const std::vector<T>& slots, R init, Fn&& combine) {
  R acc = std::move(init);
  for (const T& v : slots) acc = combine(std::move(acc), v);
  return acc;
}

}  // namespace balbench::util
