#include "util/atomic_write.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace balbench::util {

namespace {

[[noreturn]] void fail(const std::string& op, const std::string& path) {
  throw std::runtime_error("atomic_write: " + op + " failed for '" + path +
                           "': " + std::strerror(errno));
}

/// fsync, retried through EINTR (a signal must not silently skip the
/// one syscall the durability guarantee hangs on).
int fsync_retry(int fd) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

/// fsync the directory containing `path` so the rename itself is
/// durable, not just the file contents: on ext4-like filesystems the
/// new directory entry lives in the parent's data, and a crash right
/// after rename(2) can otherwise revert -- or on some journal modes
/// lose -- the name.  Best-effort only in one respect: filesystems
/// that refuse to open directories for syncing (some network/FUSE
/// mounts) skip the sync, which degrades the guarantee from
/// "committed" to "atomic but possibly reverted" (see the header).
void sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  fsync_retry(fd);
  ::close(fd);
}

}  // namespace

void atomic_write(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open", tmp);

  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write", tmp);
    }
    written += static_cast<std::size_t>(n);
  }

  if (fsync_retry(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename", path);
  }
  sync_parent_dir(path);
}

}  // namespace balbench::util
