// ASCII table rendering for benchmark protocols.
//
// Both benchmarks must "report the detailed results" (paper Sec. 2.2);
// the original codes emit fixed-width protocol tables.  This writer
// right-aligns numeric columns, supports multi-line headers and row
// separators, and renders to any std::ostream.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace balbench::util {

class Table {
 public:
  /// `headers` are column titles; embedded '\n' splits a title across
  /// header lines.
  explicit Table(std::vector<std::string> headers);

  /// Append a row.  Cells beyond the header count are dropped; missing
  /// cells render empty.
  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal separator line before the next row.
  void add_separator();

  /// Insert a full-width section label row ("Distributed memory
  /// systems" in Table 1 of the paper).
  void add_section(std::string label);

  void render(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  struct Row {
    enum class Kind { Cells, Separator, Section } kind = Kind::Cells;
    std::vector<std::string> cells;  // Kind::Cells
    std::string label;               // Kind::Section
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

/// Format helper: fixed precision double -> string.
std::string fmt(double value, int precision = 1);
std::string fmt(std::int64_t value);
std::string fmt(int value);

}  // namespace balbench::util
