#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "util/wallclock.hpp"

namespace balbench::util {

namespace {
std::atomic<PoolObserver*> g_pool_observer{nullptr};
}  // namespace

void set_pool_observer(PoolObserver* observer) {
  g_pool_observer.store(observer, std::memory_order_release);
}

PoolObserver* pool_observer() {
  return g_pool_observer.load(std::memory_order_acquire);
}

int hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int resolve_jobs(std::int64_t requested) {
  if (requested <= 0) return hardware_jobs();
  if (requested > 1024) return 1024;  // refuse absurd thread counts
  return static_cast<int>(requested);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

struct ThreadPool::Impl {
  struct Shard {
    std::mutex mu;
    std::deque<std::size_t> q;
  };

  explicit Impl(int workers) : shards(static_cast<std::size_t>(workers)) {}

  // Batch state, valid while a parallel_for is in flight.
  const std::function<void(std::size_t)>* body = nullptr;
  PoolObserver* observer = nullptr;  // re-read from the global per batch
  std::uint64_t batch_id = 0;
  std::atomic<std::size_t> remaining{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> batches{0};

  // First-by-index exception of the current batch.
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  // Worker handshake: epoch bumps once per batch; workers wait for it.
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t epoch = 0;
  bool stop = false;

  std::vector<Shard> shards;
  std::vector<std::thread> threads;

  bool try_pop_own(int me, std::size_t* out) {
    Shard& s = shards[static_cast<std::size_t>(me)];
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.q.empty()) return false;
    *out = s.q.front();
    s.q.pop_front();
    return true;
  }

  bool try_steal(int me, std::size_t* out) {
    const int w = static_cast<int>(shards.size());
    for (int d = 1; d < w; ++d) {
      Shard& s = shards[static_cast<std::size_t>((me + d) % w)];
      std::lock_guard<std::mutex> lock(s.mu);
      if (s.q.empty()) continue;
      *out = s.q.back();  // steal from the cold end
      s.q.pop_back();
      steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  void record_error(std::size_t index) {
    std::lock_guard<std::mutex> lock(mu);
    if (index < error_index) {
      error_index = index;
      error = std::current_exception();
    }
  }

  /// Runs body(index), consulting the observer's on_task_failure hook
  /// on every throw; the hook may demand an in-place re-run.  A
  /// declined (or hookless) failure is recorded for the lowest-index
  /// rethrow and the worker moves on -- a task exception never tears
  /// down the pool.
  void run_body_with_retry(std::size_t index, int me, PoolObserver* obs) {
    for (int attempt = 1;; ++attempt) {
      try {
        (*body)(index);
        return;
      } catch (const std::exception& e) {
        if (obs != nullptr &&
            obs->on_task_failure(batch_id, index, me, attempt, e.what())) {
          continue;
        }
        record_error(index);
        return;
      } catch (...) {
        if (obs != nullptr && obs->on_task_failure(batch_id, index, me, attempt,
                                                   "unknown exception")) {
          continue;
        }
        record_error(index);
        return;
      }
    }
  }

  void execute(std::size_t index, int me, bool stolen) {
    executed.fetch_add(1, std::memory_order_relaxed);
    // Telemetry is emitted before the remaining-count decrement so the
    // on_task callback always happens-before parallel_for returns.
    PoolObserver* obs = observer;
    const double t0 = obs != nullptr ? wall_now() : 0.0;
    run_body_with_retry(index, me, obs);
    if (obs != nullptr) obs->on_task(batch_id, index, me, stolen, t0, wall_now());
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu);
      cv_done.notify_all();
    }
  }

  void drain(int me) {
    std::size_t index;
    for (;;) {
      if (try_pop_own(me, &index)) {
        execute(index, me, /*stolen=*/false);
      } else if (try_steal(me, &index)) {
        execute(index, me, /*stolen=*/true);
      } else {
        return;
      }
    }
  }

  void worker(int me) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_work.wait(lock, [&] { return stop || epoch != seen; });
        if (stop) return;
        seen = epoch;
      }
      drain(me);
    }
  }
};

ThreadPool::ThreadPool(int workers)
    : impl_(new Impl(workers < 1 ? 1 : workers)),
      workers_(workers < 1 ? 1 : workers) {
  // Worker 0 is the calling thread; only spawn helpers beyond it.
  for (int w = 1; w < workers_; ++w) {
    impl_->threads.emplace_back([this, w] { impl_->worker(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

std::uint64_t ThreadPool::steals() const {
  return impl_->steals.load(std::memory_order_relaxed);
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_executed = impl_->executed.load(std::memory_order_relaxed);
  s.steals = impl_->steals.load(std::memory_order_relaxed);
  s.batches = impl_->batches.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::uint64_t batch =
      impl_->batches.fetch_add(1, std::memory_order_relaxed) + 1;
  PoolObserver* obs = pool_observer();
  if (workers_ == 1 || n == 1) {
    impl_->executed.fetch_add(n, std::memory_order_relaxed);
    if (obs == nullptr) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    obs->on_batch_begin(batch, n, 1, wall_now());
    for (std::size_t i = 0; i < n; ++i) {
      const double t0 = wall_now();
      // Same failure hook as the threaded path; a declined retry
      // propagates immediately (serial order makes the first failure
      // the lowest index by construction).
      for (int attempt = 1;; ++attempt) {
        try {
          body(i);
          break;
        } catch (const std::exception& e) {
          if (!obs->on_task_failure(batch, i, 0, attempt, e.what())) throw;
        } catch (...) {
          if (!obs->on_task_failure(batch, i, 0, attempt, "unknown exception")) {
            throw;
          }
        }
      }
      obs->on_task(batch, i, 0, false, t0, wall_now());
    }
    obs->on_batch_end(batch, wall_now());
    return;
  }

  // Publish the batch state *before* seeding the shards: a worker that
  // wakes late for the previous epoch may pop a freshly seeded index
  // right away, and the shard mutex it takes to do so must already
  // order these writes before its read (the seeding loop below is the
  // release point).  This also keeps `remaining` from being
  // decremented below zero by such an early pop.
  impl_->body = &body;
  impl_->observer = obs;
  impl_->batch_id = batch;
  impl_->error_index = std::numeric_limits<std::size_t>::max();
  impl_->error = nullptr;
  impl_->remaining.store(n, std::memory_order_release);
  if (obs != nullptr) obs->on_batch_begin(batch, n, workers_, wall_now());

  // Seed each shard with a contiguous block of indices.
  const auto w = static_cast<std::size_t>(workers_);
  const std::size_t block = (n + w - 1) / w;
  for (std::size_t s = 0; s < w; ++s) {
    const std::size_t lo = s * block;
    const std::size_t hi = std::min(n, lo + block);
    std::lock_guard<std::mutex> lock(impl_->shards[s].mu);
    for (std::size_t i = lo; i < hi; ++i) impl_->shards[s].q.push_back(i);
  }

  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    ++impl_->epoch;
  }
  impl_->cv_work.notify_all();

  // The calling thread works shard 0, then helps drain stragglers.
  impl_->drain(0);

  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->cv_done.wait(lock, [&] {
    return impl_->remaining.load(std::memory_order_acquire) == 0;
  });
  lock.unlock();
  if (obs != nullptr) obs->on_batch_end(batch, wall_now());
  impl_->body = nullptr;
  impl_->observer = nullptr;
  if (impl_->error) {
    auto err = impl_->error;
    impl_->error = nullptr;
    std::rethrow_exception(err);
  }
}

void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if ((jobs <= 1 || n <= 1) && pool_observer() == nullptr) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // With an observer attached even the serial case goes through a pool
  // of one so that --jobs 1 sweeps still produce batch/task telemetry
  // (the one-worker pool runs inline on the caller; Sec. 9 still holds).
  ThreadPool pool(static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(jobs < 1 ? 1 : jobs), n == 0 ? 1 : n)));
  pool.parallel_for(n, body);
}

}  // namespace balbench::util
