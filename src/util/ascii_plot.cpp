#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace balbench::util {

AsciiPlot::AsciiPlot(std::vector<std::string> x_labels, Options opts)
    : x_labels_(std::move(x_labels)), opts_(opts) {}

void AsciiPlot::add_series(Series s) {
  s.values.resize(x_labels_.size(),
                  std::numeric_limits<double>::quiet_NaN());
  series_.push_back(std::move(s));
}

void AsciiPlot::render(std::ostream& os) const {
  const int w = std::max(opts_.width, 8);
  const int h = std::max(opts_.height, 4);

  double lo = opts_.log_y ? std::numeric_limits<double>::max() : opts_.y_min_hint;
  double hi = -std::numeric_limits<double>::max();
  bool any = false;
  for (const auto& s : series_) {
    for (double v : s.values) {
      if (std::isnan(v)) continue;
      if (opts_.log_y && v <= 0.0) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      any = true;
    }
  }
  if (!any) {
    os << opts_.title << "\n  (no data)\n";
    return;
  }
  if (hi <= lo) hi = lo + 1.0;

  auto to_row = [&](double v) -> int {
    double t;
    if (opts_.log_y) {
      t = (std::log(v) - std::log(lo)) / (std::log(hi) - std::log(lo));
    } else {
      t = (v - lo) / (hi - lo);
    }
    t = std::clamp(t, 0.0, 1.0);
    return static_cast<int>(std::lround(t * (h - 1)));
  };

  std::vector<std::string> canvas(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));

  const int ncat = static_cast<int>(x_labels_.size());
  auto to_col = [&](int idx) -> int {
    if (ncat <= 1) return w / 2;
    return static_cast<int>(std::lround(
        static_cast<double>(idx) / (ncat - 1) * (w - 1)));
  };

  for (const auto& s : series_) {
    int prev_col = -1;
    int prev_row = -1;
    for (int i = 0; i < ncat; ++i) {
      const double v = s.values[static_cast<std::size_t>(i)];
      if (std::isnan(v) || (opts_.log_y && v <= 0.0)) {
        prev_col = -1;
        continue;
      }
      const int col = to_col(i);
      const int row = to_row(v);
      // Simple line interpolation to the previous point.
      if (prev_col >= 0) {
        const int steps = std::max(std::abs(col - prev_col), 1);
        for (int k = 1; k < steps; ++k) {
          const int c = prev_col + (col - prev_col) * k / steps;
          const int r = prev_row + (row - prev_row) * k / steps;
          auto& cell = canvas[static_cast<std::size_t>(h - 1 - r)]
                             [static_cast<std::size_t>(c)];
          if (cell == ' ') cell = '.';
        }
      }
      canvas[static_cast<std::size_t>(h - 1 - row)][static_cast<std::size_t>(col)] =
          s.marker;
      prev_col = col;
      prev_row = row;
    }
  }

  if (!opts_.title.empty()) os << opts_.title << '\n';

  auto ylabel_at = [&](int screen_row) -> double {
    const double t = static_cast<double>(h - 1 - screen_row) / (h - 1);
    if (opts_.log_y) {
      return std::exp(std::log(lo) + t * (std::log(hi) - std::log(lo)));
    }
    return lo + t * (hi - lo);
  };

  char num[32];
  for (int r = 0; r < h; ++r) {
    if (r == 0 || r == h - 1 || r == h / 2) {
      std::snprintf(num, sizeof num, "%9.4g", ylabel_at(r));
      os << num << " |";
    } else {
      os << "          |";
    }
    os << canvas[static_cast<std::size_t>(r)] << '\n';
  }
  os << "          +" << std::string(static_cast<std::size_t>(w), '-') << '\n';

  // X labels: print a sparse selection to avoid overlap.
  std::string labels(static_cast<std::size_t>(w) + 2, ' ');
  for (int i = 0; i < ncat; ++i) {
    const auto& lab = x_labels_[static_cast<std::size_t>(i)];
    int col = to_col(i);
    int start = std::max(0, col - static_cast<int>(lab.size()) / 2);
    if (start + static_cast<int>(lab.size()) > w + 2) {
      start = w + 2 - static_cast<int>(lab.size());
    }
    bool clash = false;
    for (std::size_t k = 0; k < lab.size(); ++k) {
      const auto p = static_cast<std::size_t>(start) + k;
      if (p < labels.size() && labels[p] != ' ') clash = true;
    }
    if (clash) continue;
    for (std::size_t k = 0; k < lab.size(); ++k) {
      const auto p = static_cast<std::size_t>(start) + k;
      if (p < labels.size()) labels[p] = lab[k];
    }
  }
  os << "           " << labels << '\n';

  os << "  legend:";
  for (const auto& s : series_) os << "  " << s.marker << '=' << s.name;
  if (!opts_.y_label.empty()) os << "   [y: " << opts_.y_label
                                 << (opts_.log_y ? ", log scale" : "") << ']';
  os << '\n';
}

std::string AsciiPlot::to_string() const {
  std::ostringstream oss;
  render(oss);
  return oss.str();
}

AsciiBarChart::AsciiBarChart(std::string title, int width)
    : title_(std::move(title)), width_(std::max(width, 10)) {}

void AsciiBarChart::add_bar(std::string label, double value, std::string annotation) {
  bars_.push_back(Bar{std::move(label), value, std::move(annotation)});
}

void AsciiBarChart::render(std::ostream& os) const {
  if (!title_.empty()) os << title_ << '\n';
  double hi = 0.0;
  std::size_t lab_w = 0;
  for (const auto& b : bars_) {
    hi = std::max(hi, b.value);
    lab_w = std::max(lab_w, b.label.size());
  }
  if (hi <= 0.0) hi = 1.0;
  for (const auto& b : bars_) {
    const int len = static_cast<int>(std::lround(b.value / hi * width_));
    os << "  " << b.label << std::string(lab_w - b.label.size(), ' ') << " |"
       << std::string(static_cast<std::size_t>(std::max(len, 0)), '#');
    char num[32];
    std::snprintf(num, sizeof num, " %.4g", b.value);
    os << num;
    if (!b.annotation.empty()) os << "  (" << b.annotation << ')';
    os << '\n';
  }
}

std::string AsciiBarChart::to_string() const {
  std::ostringstream oss;
  render(oss);
  return oss.str();
}

}  // namespace balbench::util
