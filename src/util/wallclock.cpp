#include "util/wallclock.hpp"

#include <chrono>

namespace balbench::util {

double wall_now() {
  using clock = std::chrono::steady_clock;
  // Thread-safe magic-static: the first caller fixes the epoch.
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

void wall_spin(double seconds) {
  const double until = wall_now() + seconds;
  while (wall_now() < until) {
    // spin: steady_clock reads only, no syscall sleep jitter
  }
}

}  // namespace balbench::util
