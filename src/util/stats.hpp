// Statistical helpers used by the b_eff / b_eff_io aggregation rules.
//
// The paper defines the effective bandwidth as nested combinations of
// maxima, arithmetic averages and *logarithmic* averages (geometric
// means).  These helpers implement those reductions with explicit
// handling of empty input and non-positive samples so the aggregation
// code in core/ stays free of special cases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace balbench::util {

/// Arithmetic mean of `xs`.  Returns 0 for empty input.
double mean(std::span<const double> xs);

/// Logarithmic average (geometric mean) of `xs`:
///   logavg(x_1..x_n) = exp( (1/n) * sum_i ln(x_i) ).
/// This is the `logavg` of the b_eff definition (paper Sec. 4).
/// Non-positive samples are invalid for a geometric mean; they are
/// clamped to `floor` (default 1e-12) so that a single failed
/// measurement drags the average down instead of poisoning it with NaN.
double logavg(std::span<const double> xs, double floor = 1e-12);

/// Two-value convenience overload used for the final
/// logavg(logavg_rings, logavg_random) step.
double logavg2(double a, double b, double floor = 1e-12);

/// Maximum of `xs`; 0 for empty input.
double maximum(std::span<const double> xs);

/// Minimum of `xs`; 0 for empty input.
double minimum(std::span<const double> xs);

/// Sum of `xs`.
double sum(std::span<const double> xs);

/// Weighted arithmetic mean: sum(w_i * x_i) / sum(w_i).
/// Used by b_eff_io: pattern types averaged with double weight for the
/// scatter type, access methods with weights 25/25/50.
double weighted_mean(std::span<const double> xs, std::span<const double> ws);

/// Median of `xs` (the mean of the middle pair for even counts).
/// Returns 0 for empty input.
double median(std::span<const double> xs);

/// Median absolute deviation: median(|x_i - median(xs)|).  The raw
/// MAD, no 1.4826 normal-consistency factor -- balbench-perf reports
/// it as a robust spread in the sample's own units.  0 for empty input.
double mad(std::span<const double> xs);

/// Robust repeated-measurement summary for wall-clock samples
/// (balbench-perf, DESIGN.md Sec. 11).  Hunold & Carpen-Amarie ("MPI
/// Benchmarking Revisited", PAPERS.md) show min/mean-of-N timing is
/// untrustworthy under noise; the harness therefore reports the median
/// with its MAD and a bootstrap confidence interval instead.
struct RobustSummary {
  std::size_t count = 0;
  double median = 0.0;
  double mad = 0.0;
  double ci_lo = 0.0;  ///< 95 % percentile-bootstrap CI of the median
  double ci_hi = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Percentile bootstrap of the median: `resamples` resamples with
/// replacement, 2.5th/97.5th percentiles of the resampled medians.
/// Deterministic for a given seed (Xoshiro256), so re-running the
/// analysis over the same samples reproduces the same interval.
RobustSummary robust_summary(std::span<const double> xs, int resamples = 2000,
                             std::uint64_t seed = 2001);

/// Online min/max/mean/sum accumulator for measurement loops.
class Accumulator {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace balbench::util
