#include "util/backoff.hpp"

#include <algorithm>
#include <cmath>

namespace balbench::util {

double Backoff::delay_for(int attempt) const {
  const int k = attempt < 1 ? 1 : attempt;
  const double raw = base_s * std::ldexp(1.0, k - 1);
  return std::min(cap_s, raw);
}

}  // namespace balbench::util
