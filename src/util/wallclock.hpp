// Host wall-clock time base for the observability layer.
//
// Everything in this repo that *reports* numbers runs on virtual time
// (DESIGN.md Sec. 9/10); wall-clock exists only to observe the cost of
// the benchmark harness itself -- profiler spans, scheduler telemetry,
// balbench-perf samples.  One process-wide steady_clock epoch keeps
// every wall timestamp on a single axis, so spans recorded by
// different threads and subsystems line up in one timeline.
#pragma once

namespace balbench::util {

/// Monotonic host seconds since the process-wide epoch (the first call
/// in the process, std::chrono::steady_clock).  Never feeds a run
/// record or any byte-compared output -- wall-clock is observe-only
/// (DESIGN.md Sec. 10.2/11).
double wall_now();

/// Busy-spins until `seconds` of wall-clock time elapsed.  Used by the
/// balbench-perf calibration cells (a spin is far steadier than a
/// sleep under timer-tick granularity) and by the artificial-handicap
/// test hook of the regression gate.
void wall_spin(double seconds);

}  // namespace balbench::util
