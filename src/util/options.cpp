#include "util/options.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace balbench::util {

Options::Options(std::string program_description)
    : description_(std::move(program_description)) {}

void Options::add(const std::string& name, Spec spec) {
  if (specs_.count(name) != 0) {
    throw std::logic_error("Options: duplicate option --" + name);
  }
  specs_.emplace(name, std::move(spec));
  order_.push_back(name);
}

void Options::add_flag(const std::string& name, bool* target, const std::string& help) {
  add(name, Spec{Spec::Kind::Flag, target, help, *target ? "true" : "false"});
}

void Options::add_int(const std::string& name, std::int64_t* target,
                      const std::string& help) {
  add(name, Spec{Spec::Kind::Int, target, help, std::to_string(*target)});
}

void Options::add_double(const std::string& name, double* target,
                         const std::string& help) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", *target);
  add(name, Spec{Spec::Kind::Double, target, help, buf});
}

void Options::add_string(const std::string& name, std::string* target,
                         const std::string& help) {
  add(name, Spec{Spec::Kind::String, target, help, "'" + *target + "'"});
}

void Options::add_jobs(std::int64_t* target, const std::string& what) {
  add_int("jobs", target,
          "worker threads for " + what +
              "; output is byte-identical for every value"
              " (0 = all hardware threads, 1 = serial)");
}

void Options::add_positionals(std::vector<std::string>* target,
                              const std::string& name,
                              const std::string& help) {
  positionals_ = target;
  positional_name_ = name;
  positional_help_ = help;
}

bool Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      if (positionals_ != nullptr) {
        positionals_->push_back(arg);
        continue;
      }
      throw std::invalid_argument("unexpected positional argument '" + arg +
                                  "'\n" + help());
    }
    arg = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      have_value = true;
    }
    auto it = specs_.find(arg);
    if (it == specs_.end()) {
      throw std::invalid_argument("unknown option --" + arg + "\n" + help());
    }
    Spec& spec = it->second;
    if (spec.kind == Spec::Kind::Flag) {
      if (have_value) {
        *static_cast<bool*>(spec.target) = (value == "1" || value == "true");
      } else {
        *static_cast<bool*>(spec.target) = true;
      }
      continue;
    }
    if (!have_value) {
      if (i + 1 >= argc) {
        throw std::invalid_argument("option --" + arg + " needs a value");
      }
      value = argv[++i];
    }
    switch (spec.kind) {
      case Spec::Kind::Int:
        *static_cast<std::int64_t*>(spec.target) = std::stoll(value);
        break;
      case Spec::Kind::Double:
        *static_cast<double*>(spec.target) = std::stod(value);
        break;
      case Spec::Kind::String:
        *static_cast<std::string*>(spec.target) = value;
        break;
      case Spec::Kind::Flag:
        break;
    }
  }
  return true;
}

std::string Options::help() const {
  std::ostringstream oss;
  oss << description_ << "\n";
  if (positionals_ != nullptr) {
    oss << "\npositional arguments:\n  " << positional_name_ << "...\n        "
        << positional_help_ << "\n";
  }
  oss << "\noptions:\n";
  for (const auto& name : order_) {
    const Spec& s = specs_.at(name);
    oss << "  --" << name;
    switch (s.kind) {
      case Spec::Kind::Flag: break;
      case Spec::Kind::Int: oss << " <int>"; break;
      case Spec::Kind::Double: oss << " <float>"; break;
      case Spec::Kind::String: oss << " <str>"; break;
    }
    oss << "\n        " << s.help << " (default: " << s.default_repr << ")\n";
  }
  oss << "  --help\n        show this message\n";
  return oss.str();
}

}  // namespace balbench::util
