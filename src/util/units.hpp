// Byte-size and bandwidth formatting/parsing.
//
// The paper (and the original b_eff protocol files) report sizes as
// "1 kB", "1 MB", "+8B" variants and bandwidths in MByte/s.  We follow
// the paper's convention: 1 kB = 1024 B, 1 MB = 1024^2 B (binary units,
// as the benchmark sources use powers of two).
#pragma once

#include <cstdint>
#include <string>

namespace balbench::util {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * 1024;
inline constexpr std::int64_t kGiB = 1024LL * 1024 * 1024;

/// "1 B", "512 B", "4 kB", "1 MB", "2 GB"; exact multiples only,
/// otherwise falls back to "<n> B".  Matches the paper's table labels.
std::string format_bytes(std::int64_t bytes);

/// Compact pseudo-log tick label used in Fig. 4 style plots:
/// wellformed sizes print as format_bytes, non-wellformed sizes
/// (wellformed + 8) print as "<wf>+8".
std::string format_chunk_label(std::int64_t bytes);

/// Bandwidth in MByte/s with a sensible precision ("  19919", "39.4").
std::string format_mbps(double bytes_per_second, int precision = 0);

/// Parse "4k", "4kB", "1M", "1 MB", "128", "2g" -> bytes.
/// Throws std::invalid_argument on garbage.
std::int64_t parse_bytes(const std::string& text);

/// True if `bytes` is a power of two (the paper's "wellformed" sizes).
bool is_wellformed(std::int64_t bytes);

/// Seconds pretty-printer: "3.2 s", "13.6 s", "250 us", "12 min".
std::string format_seconds(double seconds);

}  // namespace balbench::util
