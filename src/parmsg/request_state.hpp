// Shared request-state plumbing between the transports.
#pragma once

#include <condition_variable>
#include <mutex>

namespace balbench::simt {
class Process;
}

namespace balbench::parmsg::detail {

struct RequestState {
  bool done = false;

  // Simulation transport: fiber to wake when the operation completes.
  simt::Process* sim_waiter = nullptr;

  // Thread transport: completion signalling.
  std::mutex mu;
  std::condition_variable cv;

  void complete_threaded() {
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace balbench::parmsg::detail
