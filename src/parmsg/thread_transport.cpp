#include "parmsg/thread_transport.hpp"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <list>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parmsg/request_state.hpp"

namespace balbench::parmsg {

namespace {
class ThreadComm;
}

// ---------------------------------------------------------------------------
// Shared state of one run
// ---------------------------------------------------------------------------

struct ThreadRun {
  explicit ThreadRun(int np) : nprocs(np), mailboxes(static_cast<std::size_t>(np)) {}

  struct Arrival {
    std::vector<char> data;
    std::size_t n = 0;
  };
  struct PendingRecv {
    int src = 0;
    int tag = 0;
    void* buf = nullptr;
    std::size_t n = 0;
    std::shared_ptr<detail::RequestState> req;
  };
  struct Mailbox {
    std::mutex mu;
    std::map<std::pair<int, int>, std::list<Arrival>> arrived;
    std::list<PendingRecv> pending;
  };

  void deliver(int dst, int src, int tag, Arrival arrival) {
    Mailbox& box = mailboxes[static_cast<std::size_t>(dst)];
    std::shared_ptr<detail::RequestState> completed;
    {
      std::lock_guard<std::mutex> lock(box.mu);
      bool matched = false;
      for (auto it = box.pending.begin(); it != box.pending.end(); ++it) {
        if (it->src == src && it->tag == tag) {
          if (it->buf != nullptr && !arrival.data.empty()) {
            std::memcpy(it->buf, arrival.data.data(), std::min(it->n, arrival.n));
          }
          completed = it->req;
          box.pending.erase(it);
          matched = true;
          break;
        }
      }
      if (!matched) box.arrived[{src, tag}].push_back(std::move(arrival));
    }
    if (completed) completed->complete_threaded();
  }

  // Central sense-reversing barrier + collective scratch space.
  std::mutex coll_mu;
  std::condition_variable coll_cv;
  int coll_arrived = 0;
  std::uint64_t coll_generation = 0;
  std::vector<char> bcast_data;
  double reduce_acc_max = 0.0;
  double reduce_acc_sum = 0.0;
  bool reduce_started = false;

  int nprocs;
  std::vector<Mailbox> mailboxes;
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
};

// ---------------------------------------------------------------------------
// ThreadComm
// ---------------------------------------------------------------------------

namespace {

class ThreadComm final : public Comm {
 public:
  ThreadComm(ThreadRun& run, int rank) : run_(run), rank_(rank) {}

  int rank() const override { return rank_; }
  int size() const override { return run_.nprocs; }

  double wtime() override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         run_.epoch)
        .count();
  }

  Request isend(int dst, const void* buf, std::size_t n, int tag) override {
    if (dst < 0 || dst >= run_.nprocs) {
      throw std::out_of_range("isend: bad destination rank");
    }
    ThreadRun::Arrival arrival;
    arrival.n = n;
    if (buf != nullptr && n > 0) {
      arrival.data.assign(static_cast<const char*>(buf),
                          static_cast<const char*>(buf) + n);
    }
    run_.deliver(dst, rank_, tag, std::move(arrival));
    auto req = std::make_shared<detail::RequestState>();
    req->done = true;
    return make_request(req);
  }

  Request irecv(int src, void* buf, std::size_t n, int tag) override {
    if (src < 0 || src >= run_.nprocs) {
      throw std::out_of_range("irecv: bad source rank");
    }
    auto req = std::make_shared<detail::RequestState>();
    ThreadRun::Mailbox& box = run_.mailboxes[static_cast<std::size_t>(rank_)];
    std::lock_guard<std::mutex> lock(box.mu);
    auto it = box.arrived.find({src, tag});
    if (it != box.arrived.end() && !it->second.empty()) {
      ThreadRun::Arrival& a = it->second.front();
      if (buf != nullptr && !a.data.empty()) {
        std::memcpy(buf, a.data.data(), std::min(n, a.n));
      }
      it->second.pop_front();
      if (it->second.empty()) box.arrived.erase(it);
      req->done = true;
    } else {
      box.pending.push_back(ThreadRun::PendingRecv{src, tag, buf, n, req});
    }
    return make_request(req);
  }

  void wait(Request& req) override {
    if (!req.valid()) return;
    auto st = state_of(req);
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait(lock, [&] { return st->done; });
  }

  void barrier() override { barrier_internal(); }

  void bcast(void* buf, std::size_t n, int root) override {
    // Phase 1: root publishes.
    {
      std::lock_guard<std::mutex> lock(run_.coll_mu);
      if (rank_ == root && buf != nullptr) {
        run_.bcast_data.assign(static_cast<char*>(buf),
                               static_cast<char*>(buf) + n);
      }
    }
    barrier_internal();
    // Phase 2: everyone reads; a trailing barrier prevents the next
    // bcast from overwriting the slot early.
    if (rank_ != root && buf != nullptr) {
      std::lock_guard<std::mutex> lock(run_.coll_mu);
      if (!run_.bcast_data.empty()) {
        std::memcpy(buf, run_.bcast_data.data(), std::min(n, run_.bcast_data.size()));
      }
    }
    barrier_internal();
  }

  double allreduce_max(double x) override { return allreduce(x, true); }
  double allreduce_sum(double x) override { return allreduce(x, false); }

 private:
  void barrier_internal() {
    std::unique_lock<std::mutex> lock(run_.coll_mu);
    const std::uint64_t gen = run_.coll_generation;
    if (++run_.coll_arrived == run_.nprocs) {
      run_.coll_arrived = 0;
      ++run_.coll_generation;
      run_.coll_cv.notify_all();
    } else {
      run_.coll_cv.wait(lock, [&] { return run_.coll_generation != gen; });
    }
  }

  double allreduce(double x, bool want_max) {
    {
      std::lock_guard<std::mutex> lock(run_.coll_mu);
      if (!run_.reduce_started) {
        run_.reduce_acc_max = x;
        run_.reduce_acc_sum = x;
        run_.reduce_started = true;
      } else {
        run_.reduce_acc_max = std::max(run_.reduce_acc_max, x);
        run_.reduce_acc_sum += x;
      }
    }
    barrier_internal();
    double result = 0.0;
    {
      std::lock_guard<std::mutex> lock(run_.coll_mu);
      result = want_max ? run_.reduce_acc_max : run_.reduce_acc_sum;
    }
    barrier_internal();
    {
      std::lock_guard<std::mutex> lock(run_.coll_mu);
      run_.reduce_started = false;
    }
    // A final barrier so no rank races ahead and starts the next
    // reduction before reduce_started was reset.
    barrier_internal();
    return result;
  }

  ThreadRun& run_;
  int rank_;
};

}  // namespace

// ---------------------------------------------------------------------------
// ThreadTransport
// ---------------------------------------------------------------------------

ThreadTransport::ThreadTransport(int max_procs) : max_procs_(max_procs) {
  if (max_procs < 1) throw std::invalid_argument("max_procs must be >= 1");
}

void ThreadTransport::run(int nprocs, const std::function<void(Comm&)>& body) {
  if (nprocs < 1 || nprocs > max_procs_) {
    throw std::invalid_argument("ThreadTransport::run: nprocs out of range");
  }
  ThreadRun run(nprocs);
  std::vector<std::thread> threads;
  std::mutex err_mu;
  std::exception_ptr first_error;

  threads.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&, r] {
      ThreadComm comm(run, r);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::string ThreadTransport::describe() const {
  std::ostringstream oss;
  oss << "thread transport (up to " << max_procs_ << " ranks)";
  return oss.str();
}

}  // namespace balbench::parmsg
