// Thread transport: parmsg over real std::thread ranks.
//
// Every rank is a kernel thread; messages are real buffer copies
// through per-rank mailboxes; wtime() is the steady clock.  This makes
// parmsg usable as an actual shared-memory message-passing library and
// gives the test suite a second, independent implementation of the
// Comm semantics (the property tests run the same bodies over both
// transports and require identical data movement).
#pragma once

#include <memory>

#include "parmsg/comm.hpp"

namespace balbench::parmsg {

struct ThreadRun;

class ThreadTransport final : public Transport {
 public:
  /// `max_procs` bounds run(); purely a sanity limit (threads are
  /// oversubscribed onto however many cores exist).
  explicit ThreadTransport(int max_procs = 256);

  [[nodiscard]] int max_processes() const override { return max_procs_; }

  void run(int nprocs, const std::function<void(Comm&)>& body) override;

  [[nodiscard]] std::string describe() const override;

 private:
  int max_procs_;
};

}  // namespace balbench::parmsg
