// Cartesian process-grid helpers (MPI_Dims_create / MPI_Cart_shift
// equivalents) used by the b_eff analysis patterns: the benchmark
// measures 2-D and 3-D Cartesian halo communication "in both directions
// separately and together" (paper Sec. 4).
#pragma once

#include <array>
#include <vector>

namespace balbench::parmsg {

/// Balanced factorization of `nprocs` into `ndims` factors, most
/// balanced first (MPI_Dims_create semantics with all dims zero).
std::vector<int> dims_create(int nprocs, int ndims);

/// Row-major rank <-> coordinate conversion on a periodic grid.
std::vector<int> cart_coords(int rank, const std::vector<int>& dims);
int cart_rank(const std::vector<int>& coords, const std::vector<int>& dims);

/// Ranks of the source/destination for a displacement of +1 along
/// `dim` on a fully periodic grid (MPI_Cart_shift with disp=1).
struct Shift {
  int source = -1;
  int dest = -1;
};
Shift cart_shift(int rank, const std::vector<int>& dims, int dim);

}  // namespace balbench::parmsg
