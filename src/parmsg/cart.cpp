#include "parmsg/cart.hpp"

#include <algorithm>
#include <stdexcept>

namespace balbench::parmsg {

std::vector<int> dims_create(int nprocs, int ndims) {
  if (nprocs < 1 || ndims < 1) {
    throw std::invalid_argument("dims_create: nprocs and ndims must be >= 1");
  }
  std::vector<int> dims(static_cast<std::size_t>(ndims), 1);
  // Greedy: repeatedly assign the largest prime factor to the currently
  // smallest dimension, then sort descending -- matches the balanced
  // factorizations MPI implementations produce for typical sizes.
  int remaining = nprocs;
  std::vector<int> factors;
  for (int f = 2; f * f <= remaining; ++f) {
    while (remaining % f == 0) {
      factors.push_back(f);
      remaining /= f;
    }
  }
  if (remaining > 1) factors.push_back(remaining);
  std::sort(factors.rbegin(), factors.rend());
  for (int f : factors) {
    auto it = std::min_element(dims.begin(), dims.end());
    *it *= f;
  }
  std::sort(dims.rbegin(), dims.rend());
  return dims;
}

std::vector<int> cart_coords(int rank, const std::vector<int>& dims) {
  std::vector<int> coords(dims.size());
  // Row-major: last dimension varies fastest (MPI convention).
  for (std::size_t d = dims.size(); d-- > 0;) {
    coords[d] = rank % dims[d];
    rank /= dims[d];
  }
  return coords;
}

int cart_rank(const std::vector<int>& coords, const std::vector<int>& dims) {
  if (coords.size() != dims.size()) {
    throw std::invalid_argument("cart_rank: dimension mismatch");
  }
  int rank = 0;
  for (std::size_t d = 0; d < dims.size(); ++d) {
    int c = coords[d] % dims[d];
    if (c < 0) c += dims[d];
    rank = rank * dims[d] + c;
  }
  return rank;
}

Shift cart_shift(int rank, const std::vector<int>& dims, int dim) {
  if (dim < 0 || static_cast<std::size_t>(dim) >= dims.size()) {
    throw std::invalid_argument("cart_shift: bad dimension");
  }
  auto coords = cart_coords(rank, dims);
  Shift s;
  auto up = coords;
  up[static_cast<std::size_t>(dim)] += 1;
  s.dest = cart_rank(up, dims);
  auto down = coords;
  down[static_cast<std::size_t>(dim)] -= 1;
  s.source = cart_rank(down, dims);
  return s;
}

}  // namespace balbench::parmsg
