// parmsg: a small MPI-like message-passing interface.
//
// The benchmark drivers (core/beff, core/beffio) are ordinary SPMD
// programs written against this interface, exactly like the original
// b_eff / b_eff_io codes are written against MPI.  Two transports
// implement it:
//
//   * SimTransport  -- deterministic discrete-event simulation: ranks
//     are fibers, transfers are max-min fair flows on a machine
//     topology, wtime() reads the virtual clock.  This is what
//     reproduces the paper's numbers.
//   * ThreadTransport -- real std::thread ranks with real buffer
//     copies and wall-clock wtime().  This makes parmsg a usable
//     message-passing library in its own right and lets the test suite
//     validate transfer semantics for both transports with the same
//     test bodies.
//
// Tags: user code must use tags >= 0; negative tags are reserved for
// internal collective traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace balbench::obs {
class Registry;
}  // namespace balbench::obs

namespace balbench::robust {
struct FaultPlan;
class SessionInjector;
}  // namespace balbench::robust

namespace balbench::parmsg {

/// Per-call software costs charged by the simulation transport.
/// (The thread transport incurs real costs instead.)
struct CommCosts {
  double send_overhead = 1.0e-6;       // CPU seconds per send call
  double recv_overhead = 1.0e-6;       // CPU seconds per receive call
  double alltoallv_base = 4.0e-6;      // MPI_Alltoallv call setup
  double alltoallv_per_rank = 0.06e-6; // count-array scan per rank
  double barrier_hop = 3.0e-6;         // per tree level of a barrier
  double bcast_hop = 3.0e-6;           // per tree level of a bcast
  double reduce_hop = 3.0e-6;          // per tree level of a reduction
};

namespace detail {
struct RequestState;
}

/// Handle for a nonblocking operation.  Copyable; wait() through the
/// issuing Comm.
class Request {
 public:
  Request() = default;
  [[nodiscard]] bool valid() const { return static_cast<bool>(state_); }
  [[nodiscard]] bool done() const;

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<detail::RequestState> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
};

/// Communicator bound to one rank of a running SPMD program.
/// All methods must be called from that rank's execution context.
class Comm {
 public:
  virtual ~Comm() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;

  /// Seconds; virtual time under simulation, steady clock otherwise.
  virtual double wtime() = 0;

  /// Advance this rank's clock by `dt` seconds of CPU-busy time.  The
  /// simulation transport sleeps the rank's fiber in virtual time
  /// (used for compute phases and deterministic loop fast-forward);
  /// the thread transport has no virtual clock and ignores it.
  virtual void advance(double dt) { (void)dt; }

  // --- point to point ------------------------------------------------
  // Buffers may be nullptr, in which case only timing is simulated /
  // bytes are moved without content (useful for huge-message timing
  // runs).  `n` is in bytes.

  virtual void send(int dst, const void* buf, std::size_t n, int tag);
  virtual void recv(int src, void* buf, std::size_t n, int tag);

  virtual Request isend(int dst, const void* buf, std::size_t n, int tag) = 0;
  virtual Request irecv(int src, void* buf, std::size_t n, int tag) = 0;
  virtual void wait(Request& req) = 0;
  void waitall(std::span<Request> reqs);

  /// Concurrent send+receive, as MPI_Sendrecv.
  void sendrecv(int dst, const void* sendbuf, std::size_t sn, int stag,
                int src, void* recvbuf, std::size_t rn, int rtag);

  // --- collectives ----------------------------------------------------

  virtual void barrier() = 0;
  virtual void bcast(void* buf, std::size_t n, int root) = 0;
  virtual double allreduce_max(double x) = 0;
  virtual double allreduce_sum(double x) = 0;

  /// Byte-granularity MPI_Alltoallv.  Spans are size() long; an empty
  /// sendbuf/recvbuf with all-zero counts is allowed.
  virtual void alltoallv(const void* sendbuf, std::span<const std::size_t> scounts,
                         std::span<const std::size_t> sdispls, void* recvbuf,
                         std::span<const std::size_t> rcounts,
                         std::span<const std::size_t> rdispls);

 protected:
  /// Request plumbing for transport implementations (which live in
  /// implementation files and cannot be befriended individually).
  static Request make_request(std::shared_ptr<detail::RequestState> s) {
    return Request(std::move(s));
  }
  static const std::shared_ptr<detail::RequestState>& state_of(const Request& r) {
    return r.state_;
  }

  /// Default alltoallv: pairwise nonblocking exchange (used by both
  /// transports; SimComm prepends the vector-argument scan cost).
  void alltoallv_generic(const void* sendbuf, std::span<const std::size_t> scounts,
                         std::span<const std::size_t> sdispls, void* recvbuf,
                         std::span<const std::size_t> rcounts,
                         std::span<const std::size_t> rdispls);

  static constexpr int kInternalTagBase = -1000;
};

/// Executes SPMD bodies.  run() blocks until every rank returned; any
/// exception from a rank is rethrown (first one wins).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Upper bound on nprocs for run(); endpoint count of the machine.
  [[nodiscard]] virtual int max_processes() const = 0;

  virtual void run(int nprocs, const std::function<void(Comm&)>& body) = 0;

  /// Attaches a metrics registry: subsequent runs record transport and
  /// subsystem metrics into it (obs taxonomy, DESIGN.md Sec. 10.1);
  /// nullptr detaches.  Default: observability not supported, no-op.
  virtual void attach_metrics(obs::Registry* /*registry*/) {}
  /// The attached registry, or nullptr.
  [[nodiscard]] virtual obs::Registry* metrics() const { return nullptr; }

  /// Labels the next run() for trace/metrics sessions (e.g. the sweep
  /// cell name); consumed by the next run.  No-op by default.
  virtual void label_next_session(const std::string& /*label*/) {}

  /// Fault-injection wiring (robust subsystem, DESIGN.md Sec. 12.1).
  /// The plan is not owned and must outlive the runs; nullptr (the
  /// default) disables injection entirely -- transports must take no
  /// fault-related action at all in that case, preserving byte-
  /// identical output.  Defaults: faults not supported, no-op.
  virtual void set_fault_plan(const robust::FaultPlan* /*plan*/) {}
  /// 1-based retry attempt number folded into the next session's
  /// injector seed, so attempt k replays the same schedule everywhere.
  virtual void set_fault_attempt(int /*attempt*/) {}
  /// The injector of the session currently in flight (valid between a
  /// run's setup callback and its return), or nullptr.  Co-simulated
  /// subsystems (pfsim) pick it up here.
  [[nodiscard]] virtual robust::SessionInjector* session_injector() const {
    return nullptr;
  }

  [[nodiscard]] virtual std::string describe() const = 0;
};

}  // namespace balbench::parmsg
