// Simulation transport: parmsg over fibers + flow-level networking.
//
// Each rank is a simt::Process (fiber); point-to-point messages become
// flows in a net::FlowNetwork over the machine's topology; collectives
// use synchronizing tree models parameterized by CommCosts.  wtime()
// reads the virtual clock, so benchmark drivers measure *simulated*
// machine time while the host executes deterministically on one core.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "net/flow.hpp"
#include "obs/metrics.hpp"
#include "simt/trace.hpp"
#include "net/topology.hpp"
#include "parmsg/comm.hpp"
#include "simt/engine.hpp"

namespace balbench::parmsg {

class SimComm;
struct SimRun;

class SimTransport final : public Transport {
 public:
  SimTransport(std::unique_ptr<net::Topology> topology, CommCosts costs);
  ~SimTransport() override;

  [[nodiscard]] int max_processes() const override;

  void run(int nprocs, const std::function<void(Comm&)>& body) override;

  /// Like run(), but invokes `setup(engine)` after the engine exists
  /// and before any rank starts -- used to attach co-simulations such
  /// as the parallel filesystem (pfsim) to the same virtual clock.
  void run_with_setup(int nprocs,
                      const std::function<void(simt::Engine&)>& setup,
                      const std::function<void(Comm&)>& body);

  /// Virtual duration of the most recent run in seconds.
  [[nodiscard]] double last_virtual_time() const { return last_virtual_time_; }

  /// Attach a tracer: subsequent runs record per-rank activity spans
  /// (compute 'c', collectives 'b', message waits 'w', sends 's',
  /// I/O 'W'/'R' via pario).  Pass nullptr to detach.
  void set_tracer(std::shared_ptr<simt::Tracer> tracer);
  [[nodiscard]] simt::Tracer* tracer() const { return tracer_.get(); }

  /// Attach a metrics registry (not owned; must outlive the runs):
  /// subsequent runs count messages, simulated bytes and collective
  /// calls, fill the virtual-time wait/barrier histograms, and add the
  /// engine's event/switch totals at session end -- the parmsg/simt
  /// rows of the metric taxonomy (DESIGN.md Sec. 10.1).  Zero overhead
  /// beyond a null check when detached (the default).
  void attach_metrics(obs::Registry* registry) override;
  [[nodiscard]] obs::Registry* metrics() const override { return metrics_; }

  /// Names the next run's tracer session / metrics section, e.g.
  /// "cell 17: ring-2/Sendrecv".  Consumed by that run.
  void label_next_session(const std::string& label) override;

  /// Deterministic fault injection: with a plan attached, every run
  /// seeds a robust::SessionInjector from (plan seed, session label,
  /// attempt) and consults it per send; the plan's timeout becomes the
  /// engine's virtual-time deadline.  With no plan (default) the run
  /// path is byte-for-byte the pre-fault code.
  void set_fault_plan(const robust::FaultPlan* plan) override;
  void set_fault_attempt(int attempt) override;
  [[nodiscard]] robust::SessionInjector* session_injector() const override;

  [[nodiscard]] const net::Topology& topology() const { return *topology_; }
  [[nodiscard]] const CommCosts& costs() const { return costs_; }

  [[nodiscard]] std::string describe() const override;

 private:
  std::unique_ptr<net::Topology> topology_;
  CommCosts costs_;
  double last_virtual_time_ = 0.0;
  std::shared_ptr<simt::Tracer> tracer_;
  obs::Registry* metrics_ = nullptr;
  std::string next_session_label_;
  const robust::FaultPlan* fault_plan_ = nullptr;
  int fault_attempt_ = 1;
  std::unique_ptr<robust::SessionInjector> injector_;  // live during a run
};

/// Comm implementation used by SimTransport.  Exposed so that
/// virtual-time subsystems (pario) can reach the engine and the
/// calling fiber.
class SimComm final : public Comm {
 public:
  [[nodiscard]] int rank() const override;
  [[nodiscard]] int size() const override;
  double wtime() override;

  Request isend(int dst, const void* buf, std::size_t n, int tag) override;
  Request irecv(int src, void* buf, std::size_t n, int tag) override;
  void wait(Request& req) override;

  void barrier() override;
  void bcast(void* buf, std::size_t n, int root) override;
  double allreduce_max(double x) override;
  double allreduce_sum(double x) override;

  void alltoallv(const void* sendbuf, std::span<const std::size_t> scounts,
                 std::span<const std::size_t> sdispls, void* recvbuf,
                 std::span<const std::size_t> rcounts,
                 std::span<const std::size_t> rdispls) override;

  /// Virtual-time integration points for co-simulated subsystems.
  [[nodiscard]] simt::Engine& engine();
  [[nodiscard]] simt::Process& process() { return proc_; }
  /// Attached tracer, or nullptr (subsystems record I/O spans here).
  [[nodiscard]] simt::Tracer* tracer() const;
  /// Attached metrics registry, or nullptr (subsystems -- pario --
  /// record their byte counts and call histograms here).
  [[nodiscard]] obs::Registry* metrics() const;
  /// Advance this rank's virtual time by `dt` (models CPU-busy work).
  void advance(double dt) override;

 private:
  friend class SimTransport;
  friend struct SimRun;
  SimComm(SimRun& run, int rank, simt::Process& proc);
  double allreduce(double x, bool want_max);

  SimRun& run_;
  int rank_;
  simt::Process& proc_;
};

}  // namespace balbench::parmsg
