#include "parmsg/comm.hpp"

#include <cstring>
#include <stdexcept>

#include "parmsg/request_state.hpp"

namespace balbench::parmsg {

bool Request::done() const { return state_ && state_->done; }

void Comm::send(int dst, const void* buf, std::size_t n, int tag) {
  Request r = isend(dst, buf, n, tag);
  wait(r);
}

void Comm::recv(int src, void* buf, std::size_t n, int tag) {
  Request r = irecv(src, buf, n, tag);
  wait(r);
}

void Comm::waitall(std::span<Request> reqs) {
  for (auto& r : reqs) {
    if (r.valid()) wait(r);
  }
}

void Comm::sendrecv(int dst, const void* sendbuf, std::size_t sn, int stag,
                    int src, void* recvbuf, std::size_t rn, int rtag) {
  Request reqs[2];
  reqs[0] = irecv(src, recvbuf, rn, rtag);
  reqs[1] = isend(dst, sendbuf, sn, stag);
  waitall(reqs);
}

void Comm::alltoallv(const void* sendbuf, std::span<const std::size_t> scounts,
                     std::span<const std::size_t> sdispls, void* recvbuf,
                     std::span<const std::size_t> rcounts,
                     std::span<const std::size_t> rdispls) {
  alltoallv_generic(sendbuf, scounts, sdispls, recvbuf, rcounts, rdispls);
}

void Comm::alltoallv_generic(const void* sendbuf,
                             std::span<const std::size_t> scounts,
                             std::span<const std::size_t> sdispls, void* recvbuf,
                             std::span<const std::size_t> rcounts,
                             std::span<const std::size_t> rdispls) {
  const int p = size();
  const int me = rank();
  if (static_cast<int>(scounts.size()) != p || static_cast<int>(rcounts.size()) != p) {
    throw std::invalid_argument("alltoallv: count arrays must have comm size");
  }
  const auto* sbytes = static_cast<const char*>(sendbuf);
  auto* rbytes = static_cast<char*>(recvbuf);

  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(p) * 2);
  const int tag = kInternalTagBase - 1;
  for (int peer = 0; peer < p; ++peer) {
    if (peer == me || rcounts[static_cast<std::size_t>(peer)] == 0) continue;
    void* dst = rbytes != nullptr
                    ? rbytes + rdispls[static_cast<std::size_t>(peer)]
                    : nullptr;
    reqs.push_back(irecv(peer, dst, rcounts[static_cast<std::size_t>(peer)], tag));
  }
  for (int peer = 0; peer < p; ++peer) {
    if (peer == me || scounts[static_cast<std::size_t>(peer)] == 0) continue;
    const void* src = sbytes != nullptr
                          ? sbytes + sdispls[static_cast<std::size_t>(peer)]
                          : nullptr;
    reqs.push_back(isend(peer, src, scounts[static_cast<std::size_t>(peer)], tag));
  }
  // Local segment.
  if (scounts[static_cast<std::size_t>(me)] != 0) {
    if (scounts[static_cast<std::size_t>(me)] != rcounts[static_cast<std::size_t>(me)]) {
      throw std::invalid_argument("alltoallv: self send/recv count mismatch");
    }
    if (sbytes != nullptr && rbytes != nullptr) {
      std::memcpy(rbytes + rdispls[static_cast<std::size_t>(me)],
                  sbytes + sdispls[static_cast<std::size_t>(me)],
                  scounts[static_cast<std::size_t>(me)]);
    }
  }
  waitall(reqs);
}

}  // namespace balbench::parmsg
