#include "parmsg/sim_transport.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <list>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "parmsg/request_state.hpp"
#include "robust/fault.hpp"

namespace balbench::parmsg {

namespace {

int tree_depth(int nprocs) {
  int depth = 0;
  int reach = 1;
  while (reach < nprocs) {
    reach *= 2;
    ++depth;
  }
  return depth;
}

}  // namespace

// ---------------------------------------------------------------------------
// Run-scoped shared state
// ---------------------------------------------------------------------------

struct SimRun {
  SimRun(const net::Topology& topo, const CommCosts& c, int np)
      : costs(c), nprocs(np), flows(topo, engine), mailboxes(static_cast<std::size_t>(np)) {}

  struct Arrival {
    std::vector<char> data;  // empty for timing-only messages
    std::size_t n = 0;
  };
  struct PendingRecv {
    int src = 0;
    int tag = 0;
    void* buf = nullptr;
    std::size_t n = 0;
    std::shared_ptr<detail::RequestState> req;
  };
  struct Mailbox {
    // key: (src, tag) -> FIFO of arrivals (MPI ordering per channel).
    std::map<std::pair<int, int>, std::list<Arrival>> arrived;
    std::list<PendingRecv> pending;
  };

  /// Synchronizing collective: ranks check in; when the last arrives,
  /// `finish` runs (fills output slots) and everyone wakes after the
  /// modelled tree cost.
  struct CollectiveState {
    int arrived = 0;
    std::vector<simt::Process*> waiting;
  };

  void deliver(int dst, int src, int tag, Arrival arrival) {
    Mailbox& box = mailboxes[static_cast<std::size_t>(dst)];
    for (auto it = box.pending.begin(); it != box.pending.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        if (it->buf != nullptr && !arrival.data.empty()) {
          std::memcpy(it->buf, arrival.data.data(), std::min(it->n, arrival.n));
        }
        auto req = it->req;
        box.pending.erase(it);
        req->done = true;
        if (req->sim_waiter != nullptr) req->sim_waiter->wake();
        return;
      }
    }
    box.arrived[{src, tag}].push_back(std::move(arrival));
  }

  /// Metric handles resolved once per run (registration takes the
  /// registry mutex; the per-call increments are wait-free atomics).
  /// All quantities are virtual-time / simulated -- safe for run
  /// records under the determinism invariant of DESIGN.md Sec. 10.2.
  struct Metrics {
    obs::Counter* msgs_sent = nullptr;        // parmsg.msgs_sent
    obs::Counter* bytes_sent = nullptr;       // parmsg.bytes_sent (simulated bytes)
    obs::Counter* barriers = nullptr;         // parmsg.barrier_calls
    obs::Counter* bcasts = nullptr;           // parmsg.bcast_calls
    obs::Counter* reduces = nullptr;          // parmsg.allreduce_calls
    obs::Counter* alltoallvs = nullptr;       // parmsg.alltoallv_calls
    obs::Histogram* wait_seconds = nullptr;    // parmsg.wait_seconds (virtual)
    obs::Histogram* barrier_seconds = nullptr; // parmsg.barrier_seconds (virtual)
    obs::Sum* compute_seconds = nullptr;       // parmsg.compute_seconds (virtual)
  };

  void attach_metrics(obs::Registry* r) {
    registry = r;
    if (r == nullptr) return;
    metrics.msgs_sent = &r->counter("parmsg.msgs_sent");
    metrics.bytes_sent = &r->counter("parmsg.bytes_sent");
    metrics.barriers = &r->counter("parmsg.barrier_calls");
    metrics.bcasts = &r->counter("parmsg.bcast_calls");
    metrics.reduces = &r->counter("parmsg.allreduce_calls");
    metrics.alltoallvs = &r->counter("parmsg.alltoallv_calls");
    metrics.wait_seconds = &r->histogram("parmsg.wait_seconds");
    metrics.barrier_seconds = &r->histogram("parmsg.barrier_seconds");
    metrics.compute_seconds = &r->sum("parmsg.compute_seconds");
  }

  simt::Engine engine;
  const CommCosts& costs;
  int nprocs;
  robust::SessionInjector* injector = nullptr;  // owned by the transport
  simt::Tracer* tracer = nullptr;
  obs::Registry* registry = nullptr;
  Metrics metrics;
  net::FlowNetwork flows;
  std::vector<Mailbox> mailboxes;

  CollectiveState barrier_state;
  CollectiveState bcast_state;
  std::vector<char> bcast_data;
  std::vector<std::pair<void*, std::size_t>> bcast_sinks;
  CollectiveState reduce_state;
  std::vector<double> reduce_contrib;
  std::vector<double> reduce_result;  // per-rank output slot

  std::vector<std::unique_ptr<SimComm>> comms;
};

// ---------------------------------------------------------------------------
// SimComm
// ---------------------------------------------------------------------------

SimComm::SimComm(SimRun& run, int rank, simt::Process& proc)
    : run_(run), rank_(rank), proc_(proc) {}

int SimComm::rank() const { return rank_; }
int SimComm::size() const { return run_.nprocs; }
double SimComm::wtime() { return run_.engine.now(); }
simt::Engine& SimComm::engine() { return run_.engine; }
simt::Tracer* SimComm::tracer() const { return run_.tracer; }
obs::Registry* SimComm::metrics() const { return run_.registry; }

void SimComm::advance(double dt) {
  const double t0 = run_.engine.now();
  proc_.sleep(dt);
  if (run_.tracer != nullptr) {
    run_.tracer->record(t0, run_.engine.now(), rank_, 'c');
  }
  if (run_.metrics.compute_seconds != nullptr) {
    run_.metrics.compute_seconds->add(run_.engine.now() - t0);
  }
}

Request SimComm::isend(int dst, const void* buf, std::size_t n, int tag) {
  if (dst < 0 || dst >= run_.nprocs) {
    throw std::out_of_range("isend: bad destination rank");
  }
  proc_.sleep(run_.costs.send_overhead);
  if (run_.metrics.msgs_sent != nullptr) {
    run_.metrics.msgs_sent->add(1);
    run_.metrics.bytes_sent->add(n);
  }

  SimRun::Arrival arrival;
  arrival.n = n;
  if (buf != nullptr && n > 0) {
    arrival.data.assign(static_cast<const char*>(buf),
                        static_cast<const char*>(buf) + n);
  }
  auto req = std::make_shared<detail::RequestState>();
  SimRun* run = &run_;
  const int src = rank_;

  // Fault injection (robust subsystem): a stalled message starts its
  // flow late, a degraded link stretches the flow by inflating its
  // byte count (1/factor).  One next_send() decision per isend, drawn
  // in deterministic fiber order; without an injector this block
  // compiles down to the original direct start_flow.
  double flow_bytes = static_cast<double>(n);
  double stall_s = 0.0;
  if (run_.injector != nullptr) {
    // Windowed and node-drop faults are gated on the current virtual
    // time and the (src, dst) pair; a drop throws InjectedFault out of
    // the sending fiber, failing the attempt like an I/O error does.
    const auto fault = run_.injector->next_send(run_.engine.now(), src, dst);
    stall_s = fault.stall_s;
    if (fault.degrade_factor < 1.0) flow_bytes /= fault.degrade_factor;
  }
  auto deliver = [run, dst, src, tag,
                  arrival = std::move(arrival)](simt::Time) mutable {
    run->deliver(dst, src, tag, std::move(arrival));
  };
  if (stall_s > 0.0) {
    run_.engine.schedule_after(
        stall_s, [run, src, dst, flow_bytes, deliver = std::move(deliver)]() mutable {
          run->flows.start_flow(src, dst, flow_bytes, std::move(deliver));
        });
  } else {
    run_.flows.start_flow(rank_, dst, flow_bytes, std::move(deliver));
  }
  // The send buffer was captured, so the send completes locally as
  // soon as the call overhead has been charged (buffered-send
  // semantics); pattern timing is carried by the matching receives.
  req->done = true;
  return make_request(req);
}

Request SimComm::irecv(int src, void* buf, std::size_t n, int tag) {
  if (src < 0 || src >= run_.nprocs) {
    throw std::out_of_range("irecv: bad source rank");
  }
  proc_.sleep(run_.costs.recv_overhead);

  auto req = std::make_shared<detail::RequestState>();
  SimRun::Mailbox& box = run_.mailboxes[static_cast<std::size_t>(rank_)];
  auto it = box.arrived.find({src, tag});
  if (it != box.arrived.end() && !it->second.empty()) {
    SimRun::Arrival& a = it->second.front();
    if (buf != nullptr && !a.data.empty()) {
      std::memcpy(buf, a.data.data(), std::min(n, a.n));
    }
    it->second.pop_front();
    if (it->second.empty()) box.arrived.erase(it);
    req->done = true;
    return make_request(req);
  }
  box.pending.push_back(SimRun::PendingRecv{src, tag, buf, n, req});
  return make_request(req);
}

void SimComm::wait(Request& req) {
  if (!req.valid()) return;
  auto st = state_of(req);
  const double t0 = run_.engine.now();
  bool blocked = false;
  while (!st->done) {
    assert(st->sim_waiter == nullptr && "two waiters on one request");
    st->sim_waiter = &proc_;
    proc_.block();
    st->sim_waiter = nullptr;
    blocked = true;
  }
  if (blocked) {
    if (run_.tracer != nullptr) {
      run_.tracer->record(t0, run_.engine.now(), rank_, 'w');
    }
    if (run_.metrics.wait_seconds != nullptr) {
      run_.metrics.wait_seconds->observe(run_.engine.now() - t0);
    }
  }
}

void SimComm::barrier() {
  const double t_enter = run_.engine.now();
  auto& st = run_.barrier_state;
  st.waiting.push_back(&proc_);
  if (++st.arrived == run_.nprocs) {
    const double cost = tree_depth(run_.nprocs) * run_.costs.barrier_hop;
    auto waiters = std::move(st.waiting);
    st.waiting.clear();
    st.arrived = 0;
    run_.engine.schedule_after(cost, [waiters = std::move(waiters)] {
      for (auto* w : waiters) w->wake();
    });
  }
  proc_.block();
  if (run_.tracer != nullptr) {
    run_.tracer->record(t_enter, run_.engine.now(), rank_, 'b');
  }
  if (run_.metrics.barriers != nullptr) {
    run_.metrics.barriers->add(1);
    run_.metrics.barrier_seconds->observe(run_.engine.now() - t_enter);
  }
}

void SimComm::bcast(void* buf, std::size_t n, int root) {
  if (run_.metrics.bcasts != nullptr) run_.metrics.bcasts->add(1);
  auto& st = run_.bcast_state;
  if (st.arrived == 0) {
    run_.bcast_sinks.clear();
    run_.bcast_data.clear();
  }
  st.waiting.push_back(&proc_);
  if (rank_ == root && buf != nullptr && n > 0) {
    run_.bcast_data.assign(static_cast<char*>(buf), static_cast<char*>(buf) + n);
  } else if (rank_ != root && buf != nullptr) {
    run_.bcast_sinks.emplace_back(buf, n);
  }
  if (++st.arrived == run_.nprocs) {
    // Binomial-tree cost: depth hops, payload streamed along each hop.
    const int depth = tree_depth(run_.nprocs);
    const double payload =
        static_cast<double>(n) /
        run_.flows.topology().self_bandwidth() * static_cast<double>(depth);
    const double cost = depth * run_.costs.bcast_hop + payload;
    auto waiters = std::move(st.waiting);
    st.waiting.clear();
    st.arrived = 0;
    SimRun* run = &run_;
    run_.engine.schedule_after(cost, [run, waiters = std::move(waiters)] {
      for (auto& [sink, len] : run->bcast_sinks) {
        if (!run->bcast_data.empty()) {
          std::memcpy(sink, run->bcast_data.data(),
                      std::min(len, run->bcast_data.size()));
        }
      }
      for (auto* w : waiters) w->wake();
    });
  }
  proc_.block();
}

double SimComm::allreduce(double x, bool want_max) {
  if (run_.metrics.reduces != nullptr) run_.metrics.reduces->add(1);
  auto& st = run_.reduce_state;
  if (st.arrived == 0) run_.reduce_contrib.clear();
  st.waiting.push_back(&proc_);
  run_.reduce_contrib.push_back(x);
  if (++st.arrived == run_.nprocs) {
    const double cost = 2.0 * tree_depth(run_.nprocs) * run_.costs.reduce_hop;
    auto waiters = std::move(st.waiting);
    st.waiting.clear();
    st.arrived = 0;
    SimRun* run = &run_;
    const bool is_max = want_max;
    run_.engine.schedule_after(cost, [run, is_max, waiters = std::move(waiters)] {
      double acc = is_max ? -1.0e300 : 0.0;
      for (double v : run->reduce_contrib) {
        acc = is_max ? std::max(acc, v) : acc + v;
      }
      run->reduce_result.assign(static_cast<std::size_t>(run->nprocs), acc);
      for (auto* w : waiters) w->wake();
    });
  }
  proc_.block();
  return run_.reduce_result[static_cast<std::size_t>(rank_)];
}

double SimComm::allreduce_max(double x) { return allreduce(x, true); }
double SimComm::allreduce_sum(double x) { return allreduce(x, false); }

void SimComm::alltoallv(const void* sendbuf, std::span<const std::size_t> scounts,
                        std::span<const std::size_t> sdispls, void* recvbuf,
                        std::span<const std::size_t> rcounts,
                        std::span<const std::size_t> rdispls) {
  // Vector-argument scan: MPI_Alltoallv implementations walk count and
  // displacement arrays of length P on every call.
  if (run_.metrics.alltoallvs != nullptr) run_.metrics.alltoallvs->add(1);
  proc_.sleep(run_.costs.alltoallv_base +
              run_.costs.alltoallv_per_rank * static_cast<double>(run_.nprocs));
  alltoallv_generic(sendbuf, scounts, sdispls, recvbuf, rcounts, rdispls);
}

// ---------------------------------------------------------------------------
// SimTransport
// ---------------------------------------------------------------------------

SimTransport::SimTransport(std::unique_ptr<net::Topology> topology, CommCosts costs)
    : topology_(std::move(topology)), costs_(costs) {
  if (!topology_) throw std::invalid_argument("SimTransport: null topology");
}

SimTransport::~SimTransport() = default;

int SimTransport::max_processes() const { return topology_->num_endpoints(); }

void SimTransport::run(int nprocs, const std::function<void(Comm&)>& body) {
  run_with_setup(nprocs, {}, body);
}

void SimTransport::set_tracer(std::shared_ptr<simt::Tracer> tracer) {
  tracer_ = std::move(tracer);
  if (tracer_) {
    tracer_->describe('c', "compute");
    tracer_->describe('b', "collective");
    tracer_->describe('w', "msg-wait");
    tracer_->describe('W', "io-write");
    tracer_->describe('R', "io-read");
  }
}

void SimTransport::attach_metrics(obs::Registry* registry) {
  metrics_ = registry;
}

void SimTransport::label_next_session(const std::string& label) {
  next_session_label_ = label;
}

void SimTransport::set_fault_plan(const robust::FaultPlan* plan) {
  fault_plan_ = plan;
  fault_attempt_ = 1;
}

void SimTransport::set_fault_attempt(int attempt) {
  fault_attempt_ = attempt < 1 ? 1 : attempt;
}

robust::SessionInjector* SimTransport::session_injector() const {
  return injector_.get();
}

void SimTransport::run_with_setup(int nprocs,
                                  const std::function<void(simt::Engine&)>& setup,
                                  const std::function<void(Comm&)>& body) {
  if (nprocs < 1 || nprocs > max_processes()) {
    throw std::invalid_argument("SimTransport::run: nprocs out of range 1.." +
                                std::to_string(max_processes()));
  }
  SimRun run(*topology_, costs_, nprocs);
  run.tracer = tracer_.get();
  run.attach_metrics(metrics_);
  // One tracer session and one registry sample section per run, with
  // the same label: the trace exporter pairs them up by index so 'C'
  // counter events land in the right Chrome process.
  const std::string session_label = std::move(next_session_label_);
  next_session_label_.clear();
  if (run.tracer != nullptr) run.tracer->begin_session(session_label);
  if (metrics_ != nullptr) metrics_->begin_section();
  // Fault wiring must precede setup(): co-simulated subsystems fetch
  // the injector via session_injector() from their setup callback.
  injector_.reset();
  if (fault_plan_ != nullptr) {
    injector_ = std::make_unique<robust::SessionInjector>(
        *fault_plan_, session_label, fault_attempt_);
    run.injector = injector_.get();
    if (fault_plan_->retry.timeout_s > 0.0) {
      run.engine.set_deadline(fault_plan_->retry.timeout_s);
    }
  }
  if (setup) setup(run.engine);
  for (int r = 0; r < nprocs; ++r) {
    run.comms.push_back(nullptr);  // placeholder; filled when spawning
  }
  for (int r = 0; r < nprocs; ++r) {
    run.engine.spawn([&run, r, &body](simt::Process& proc) {
      run.comms[static_cast<std::size_t>(r)] =
          std::unique_ptr<SimComm>(new SimComm(run, r, proc));
      body(*run.comms[static_cast<std::size_t>(r)]);
    });
  }
  run.engine.run();
  last_virtual_time_ = run.engine.now();
  if (metrics_ != nullptr) {
    // Engine totals are sampled once at session end rather than
    // incremented inline: the engine must not depend on obs.  All
    // three are deterministic functions of the simulated configuration.
    metrics_->counter("simt.events_fired").add(run.engine.events_fired());
    metrics_->counter("simt.context_switches").add(run.engine.context_switches());
    metrics_->sum("simt.virtual_seconds").add(run.engine.now());
    metrics_->counter("net.flow_resolves").add(run.flows.resolves());
    metrics_->counter("net.flow_resolves_incremental")
        .add(run.flows.incremental_resolves());
    // Capacity high-waters (merge across cells: max).  Both derive
    // from the simulated configuration, never from the stack pool's
    // host-side reuse behaviour, which would break record determinism
    // (docs/SIMULATOR.md "Determinism invariants").
    metrics_->gauge("simt.live_ranks_high_water")
        .set_max(static_cast<double>(run.engine.live_process_high_water()));
    metrics_->gauge("simt.fiber_stack_bytes_high_water")
        .set_max(static_cast<double>(run.engine.live_process_high_water()) *
                 static_cast<double>(simt::StackPool::default_stack_size()));
    // Only ever registered when a fault plan is active, so fault-free
    // records keep their exact pre-fault metric key set.
    if (run.injector != nullptr) {
      metrics_->counter("robust.faults_injected").add(run.injector->injected_count());
    }
  }
}

std::string SimTransport::describe() const {
  std::ostringstream oss;
  oss << "sim transport [" << topology_->describe() << ']';
  return oss.str();
}

}  // namespace balbench::parmsg
