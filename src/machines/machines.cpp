#include "machines/machines.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace balbench::machines {

namespace {

using util::kGiB;
using util::kMiB;

/// Bandwidths in the paper's tables are MByte/s with MByte = 2^20.
constexpr double mbps(double v) { return v * static_cast<double>(kMiB); }

}  // namespace

MachineSpec cray_t3e_900() {
  MachineSpec m;
  m.name = "Cray T3E/900-512";
  m.short_name = "t3e";
  m.max_procs = 512;
  m.memory_per_proc = 128 * kMiB;  // L_max = 1 MB as in Table 1
  m.shared_memory = false;
  m.rmax_gflops_per_proc = 0.675;  // 900 MF peak, ~75 % Linpack efficiency
  m.paper_pingpong = mbps(330);

  // Alpha 21164/450: 2 flop/cycle peak, 96 kB on-chip L2 (the T3E has
  // no board cache), stream-buffer memory system ~600 MB/s sustained.
  m.roofline.peak_flops = 900e6;
  m.roofline.mem_bw = mbps(600);
  m.roofline.cache_bytes = 96 * 1024;
  m.roofline.mem_latency = 280e-9;
  m.roofline.net_bw = mbps(330);  // Table 1 ping-pong

  m.costs.send_overhead = 3e-6;
  m.costs.recv_overhead = 3e-6;
  m.costs.alltoallv_base = 5e-6;
  m.costs.alltoallv_per_rank = 0.05e-6;
  // Paper Sec. 5.4: barrier + bcast on 32 PEs ~ 60 us -> ~5 levels.
  m.costs.barrier_hop = 5e-6;
  m.costs.bcast_hop = 6e-6;
  m.costs.reduce_hop = 6e-6;

  m.make_topology = [](int nprocs) {
    net::Torus3DParams p;
    net::torus_dims_for(nprocs, p.dims);
    p.nic_bw = mbps(330);
    p.duplex_factor = 1.25;  // bidirectional load: ~2 x 206 MB/s
    p.link_bw = mbps(360);
    p.base_latency = 14e-6;
    p.per_hop_latency = 0.1e-6;
    p.self_bw = mbps(600);
    return net::make_torus3d(p);
  };

  // tmp-filesystem: 10 striped RAID disks on a GigaRing, ~300 MB/s
  // aggregate peak (paper Sec. 5.2); I/O is a global resource.
  pfsim::IoSystemConfig io;
  io.name = "T3E GigaRing tmp-fs (10 striped RAIDs)";
  io.num_servers = 10;
  io.disks_per_server = 1;
  io.disk.bandwidth = mbps(30);  // 10 x 30 = 300 MB/s aggregate
  io.disk.seek_time = 4e-3;
  io.disk.sequential_threshold = 256 * 1024;
  io.server_bandwidth = mbps(120);
  io.client_link_bw = mbps(180);   // GigaRing client interface
  io.fabric_bandwidth = mbps(900); // shared GigaRing
  io.stripe_unit = 64 * 1024;
  io.block_size = 16 * 1024;
  io.cache_bytes = 3LL * kGiB;     // system buffer cache across nodes
  io.request_overhead = 220e-6;    // ~4 MB/s at 1 kB chunks (paper 5.4)
  io.server_request_overhead = 40e-6;
  io.collective_two_phase = true;
  io.optimized_segmented_collective = true;
  io.shared_pointer_overhead = 150e-6;
  m.io = io;
  return m;
}

MachineSpec hitachi_sr8000(net::Placement placement) {
  const bool rr = placement == net::Placement::RoundRobin;
  MachineSpec m;
  m.name = rr ? "Hitachi SR 8000 round-robin" : "Hitachi SR 8000 sequential";
  m.short_name = rr ? "sr8000rr" : "sr8000";
  m.max_procs = 128;
  m.memory_per_proc = 1 * kGiB;  // L_max = 8 MB
  m.shared_memory = false;
  m.rmax_gflops_per_proc = 0.85;
  m.paper_pingpong = rr ? mbps(776) : mbps(954);

  // 1 GF per IP, pseudo-vector preload streams past the cache (model
  // as cache-less); ~2 GB/s per-CPU share of the node memory system.
  m.roofline.peak_flops = 1.0e9;
  m.roofline.mem_bw = mbps(2000);
  m.roofline.cache_bytes = 0;
  m.roofline.mem_latency = 200e-9;
  m.roofline.net_bw = rr ? mbps(776) : mbps(954);

  m.costs.send_overhead = 5.0e-6;
  m.costs.recv_overhead = 5.0e-6;
  m.costs.barrier_hop = 8e-6;
  m.costs.bcast_hop = 8e-6;
  m.costs.reduce_hop = 8e-6;

  m.make_topology = [placement](int nprocs) {
    net::SmpClusterParams p;
    p.procs_per_node = 8;
    p.nodes = (nprocs + p.procs_per_node - 1) / p.procs_per_node;
    p.placement = placement;
    p.per_process_copy_bw = mbps(1908);  // intra ping-pong ~954 MB/s
    p.node_memory_bw = mbps(3200);       // seq ring: ~400 MB/s per proc
    p.nic_bw = mbps(776);                // inter ping-pong ~776 MB/s
    p.switch_bw = mbps(12000);           // multidimensional crossbar
    p.intra_latency = 14e-6;
    p.inter_latency = 60e-6;
    return net::make_smp_cluster(p);
  };

  pfsim::IoSystemConfig io;
  io.name = "SR 8000 striped RAID filesystem";
  io.num_servers = 4;
  io.disks_per_server = 4;
  io.disk.bandwidth = mbps(22);
  io.disk.seek_time = 5e-3;
  io.server_bandwidth = mbps(160);
  io.client_link_bw = mbps(300);
  io.fabric_bandwidth = mbps(1200);
  io.stripe_unit = 128 * 1024;
  io.block_size = 32 * 1024;
  io.cache_bytes = 2LL * kGiB;
  io.request_overhead = 250e-6;
  io.server_request_overhead = 50e-6;
  io.collective_two_phase = true;
  io.optimized_segmented_collective = true;
  io.shared_pointer_overhead = 200e-6;
  m.io = io;
  return m;
}

MachineSpec hitachi_sr2201() {
  MachineSpec m;
  m.name = "Hitachi SR 2201";
  m.short_name = "sr2201";
  m.max_procs = 16;
  m.memory_per_proc = 256 * kMiB;  // L_max = 2 MB
  m.shared_memory = false;
  m.rmax_gflops_per_proc = 0.22;
  m.paper_pingpong = 0.0;  // cell empty in Table 1

  // 300 MF PA-RISC with pseudo-vector preload; ~300 MB/s per PE.
  m.roofline.peak_flops = 300e6;
  m.roofline.mem_bw = mbps(300);
  m.roofline.cache_bytes = 0;
  m.roofline.mem_latency = 300e-9;
  m.roofline.net_bw = mbps(100);  // calibrated: ring ~96 MB/s per proc

  m.costs.send_overhead = 6e-6;
  m.costs.recv_overhead = 6e-6;
  m.costs.barrier_hop = 10e-6;
  m.costs.bcast_hop = 10e-6;
  m.costs.reduce_hop = 10e-6;

  m.make_topology = [](int nprocs) {
    net::CrossbarParams p;
    p.processes = nprocs;
    p.port_bw = mbps(96);  // ring per-proc ~96 MB/s at L_max
    p.latency_sec = 50e-6;
    return net::make_crossbar(p);
  };
  return m;
}

MachineSpec nec_sx5() {
  MachineSpec m;
  m.name = "NEC SX-5/8B";
  m.short_name = "sx5";
  m.max_procs = 4;
  m.memory_per_proc = 256 * kMiB;  // benchmarked with L_max = 2 MB
  m.shared_memory = true;
  m.rmax_gflops_per_proc = 7.2;
  m.paper_pingpong = 0.0;

  // 8 GF vector CPU, no data cache, 64 GB/s memory ports per CPU
  // (~41 GB/s STREAM-class sustained).
  m.roofline.peak_flops = 8.0e9;
  m.roofline.mem_bw = mbps(41000);
  m.roofline.cache_bytes = 0;
  m.roofline.mem_latency = 50e-9;
  m.roofline.net_bw = mbps(8762);  // per-proc ring at L_max

  m.costs.send_overhead = 3e-6;
  m.costs.recv_overhead = 3e-6;
  m.costs.barrier_hop = 4e-6;
  m.costs.bcast_hop = 4e-6;
  m.costs.reduce_hop = 4e-6;

  m.make_topology = [](int nprocs) {
    net::SharedMemoryParams p;
    p.processes = nprocs;
    p.per_process_copy_bw = mbps(17524);  // per-proc ring ~8762 MB/s
    p.aggregate_bw = mbps(64000);         // vector memory system
    p.latency_sec = 28e-6;
    return net::make_shared_memory(p);
  };

  // Four striped RAID-3 arrays DS 1200 over fibre channel; SFS with
  // 4 MB cluster size and a large filesystem cache that is only used
  // for requests below 1 MB (paper Sec. 5.3 and 5.4).
  pfsim::IoSystemConfig io;
  io.name = "SX-5 SFS, 4 striped RAID-3 (DS 1200)";
  io.num_servers = 4;
  io.disks_per_server = 1;
  io.disk.bandwidth = mbps(48);
  io.disk.seek_time = 3e-3;
  io.disk.sequential_threshold = 512 * 1024;
  io.server_bandwidth = mbps(95);   // fibre channel per array
  io.client_link_bw = mbps(1200);
  io.fabric_bandwidth = mbps(2400);
  io.stripe_unit = 4 * kMiB;  // SFS cluster size
  io.block_size = 4 * kMiB;
  io.cache_bytes = 2LL * kGiB;  // "2 GB filesystem-cache"
  io.cache_bypass_threshold = 1 * kMiB;  // only requests < 1 MB cached
  io.request_overhead = 180e-6;
  io.server_request_overhead = 30e-6;
  io.collective_two_phase = true;
  io.optimized_segmented_collective = true;
  io.shared_pointer_overhead = 150e-6;
  m.io = io;
  return m;
}

MachineSpec nec_sx4() {
  MachineSpec m;
  m.name = "NEC SX-4/32";
  m.short_name = "sx4";
  m.max_procs = 16;
  m.memory_per_proc = 256 * kMiB;  // L_max = 2 MB
  m.shared_memory = true;
  m.rmax_gflops_per_proc = 1.7;
  m.paper_pingpong = 0.0;

  // 2 GF vector CPU, cache-less, 16 GB/s memory ports per CPU
  // (~14 GB/s sustained).
  m.roofline.peak_flops = 2.0e9;
  m.roofline.mem_bw = mbps(14000);
  m.roofline.cache_bytes = 0;
  m.roofline.mem_latency = 60e-9;
  m.roofline.net_bw = mbps(3552);

  m.costs.send_overhead = 3e-6;
  m.costs.recv_overhead = 3e-6;

  m.make_topology = [](int nprocs) {
    net::SharedMemoryParams p;
    p.processes = nprocs;
    p.per_process_copy_bw = mbps(7104);  // per-proc ring ~3552 MB/s
    p.aggregate_bw = mbps(50250);        // saturates at 16 procs
    p.latency_sec = 48e-6;
    return net::make_shared_memory(p);
  };
  return m;
}

MachineSpec hp_v9000() {
  MachineSpec m;
  m.name = "HP-V 9000";
  m.short_name = "hpv";
  m.max_procs = 7;
  m.memory_per_proc = 1 * kGiB;  // L_max = 8 MB
  m.shared_memory = true;
  m.rmax_gflops_per_proc = 0.35;
  m.paper_pingpong = 0.0;

  // V2200-class PA-8200/200: 2 flop/cycle peak, 2 MB off-chip data
  // cache; the shared Runway bus sustains ~480 MB/s per CPU under
  // load.  (The paper's 2.5 GF R_max over 7 CPUs rules out the later
  // PA-8500 V2500.)
  m.roofline.peak_flops = 400e6;
  m.roofline.mem_bw = mbps(480);
  m.roofline.cache_bytes = 2 * 1024 * 1024;
  m.roofline.mem_latency = 400e-9;
  m.roofline.net_bw = mbps(162);  // per-proc ring

  m.costs.send_overhead = 5e-6;
  m.costs.recv_overhead = 5e-6;

  m.make_topology = [](int nprocs) {
    net::SharedMemoryParams p;
    p.processes = nprocs;
    p.per_process_copy_bw = mbps(324);  // per-proc ring ~162 MB/s
    p.aggregate_bw = mbps(2000);
    p.latency_sec = 18e-6;
    return net::make_shared_memory(p);
  };
  return m;
}

MachineSpec sgi_sv1() {
  MachineSpec m;
  m.name = "SGI Cray SV1-B/16-8";
  m.short_name = "sv1";
  m.max_procs = 15;
  m.memory_per_proc = 512 * kMiB;  // L_max = 4 MB
  m.shared_memory = true;
  m.rmax_gflops_per_proc = 0.9;
  m.paper_pingpong = mbps(994);

  // SV1 vector CPU: 1.2 GF peak, 256 kB cache (the first cached Cray
  // vector design), ~1.6 GB/s per CPU from the shared memory system.
  m.roofline.peak_flops = 1.2e9;
  m.roofline.mem_bw = mbps(1600);
  m.roofline.cache_bytes = 256 * 1024;
  m.roofline.mem_latency = 120e-9;
  m.roofline.net_bw = mbps(994);  // ping-pong

  m.costs.send_overhead = 3e-6;
  m.costs.recv_overhead = 3e-6;

  m.make_topology = [](int nprocs) {
    net::SharedMemoryParams p;
    p.processes = nprocs;
    // Ping-pong reaches 994 MB/s (one flow through one port), but the
    // memory system bounds the full ring at ~375 MB/s per process.
    p.per_process_copy_bw = mbps(1988);
    p.aggregate_bw = mbps(5625);
    p.latency_sec = 60e-6;
    return net::make_shared_memory(p);
  };
  return m;
}

MachineSpec ibm_sp() {
  MachineSpec m;
  m.name = "IBM RS 6000/SP (blue Pacific)";
  m.short_name = "sp";
  m.max_procs = 336;  // one I/O thread per node (paper Sec. 5.2)
  m.memory_per_proc = 1536 * kMiB;  // 1.5 GB per node partition share
  m.shared_memory = false;
  m.rmax_gflops_per_proc = 0.9;  // 4 x 332 MHz per node
  m.paper_pingpong = 0.0;

  // One process per 4-way 332 MHz 604e node: 2.66 GF nominal, but the
  // shared 1.3 GB/s memory bus starves four 604e FPUs -- dense kernels
  // sustain ~1 GF/node (the published 0.9 GF/node Linpack), so the
  // modelled peak is the sustainable node rate, not 4x the chip sheet.
  m.roofline.peak_flops = 1.0e9;
  m.roofline.mem_bw = mbps(1300);
  m.roofline.cache_bytes = 1024 * 1024;
  m.roofline.mem_latency = 350e-9;
  m.roofline.net_bw = mbps(133);  // TB3MX adapter

  m.costs.send_overhead = 4e-6;
  m.costs.recv_overhead = 4e-6;
  m.costs.barrier_hop = 12e-6;
  m.costs.bcast_hop = 12e-6;
  m.costs.reduce_hop = 12e-6;

  m.make_topology = [](int nprocs) {
    // I/O benchmarking uses one MPI process per SMP node, so the
    // communication topology is node-level: TB3MX switch adapters.
    net::SmpClusterParams p;
    p.procs_per_node = 1;
    p.nodes = nprocs;
    p.placement = net::Placement::Sequential;
    p.per_process_copy_bw = mbps(800);
    p.node_memory_bw = mbps(1600);
    p.nic_bw = mbps(133);
    p.switch_bw = mbps(20000);
    p.intra_latency = 8e-6;
    p.inter_latency = 22e-6;
    return net::make_smp_cluster(p);
  };

  // GPFS on blue.llnl.gov: 20 VSD I/O servers; ~950 MB/s max read at
  // 128 nodes, ~690 MB/s max write at 64 nodes (paper Sec. 5.2, [8]).
  // I/O bandwidth tracks the number of client nodes until saturation.
  pfsim::IoSystemConfig io;
  io.name = "GPFS /g/g1, 20 VSD servers";
  io.num_servers = 20;
  io.disks_per_server = 2;
  io.disk.bandwidth = mbps(26);  // 20 x 2 x 26 ~ 1040 MB/s raw
  io.disk.seek_time = 6e-3;
  // GPFS writes cost more than reads (token revocation, replication):
  // ~690 MB/s write vs ~950 MB/s read at saturation (paper ref [8]).
  io.write_penalty = 1.4;
  io.disk.sequential_threshold = 256 * 1024;
  io.server_bandwidth = mbps(48);   // VSD server path: 20 x 48 = 960
  io.client_link_bw = mbps(12);     // per-node GPFS client throughput
  io.fabric_bandwidth = mbps(1400); // SP switch share for I/O
  io.stripe_unit = 256 * 1024;      // GPFS block size
  io.block_size = 256 * 1024;
  io.cache_bytes = 4LL * kGiB;      // pagepool across clients
  io.request_overhead = 300e-6;
  io.server_request_overhead = 60e-6;
  io.collective_two_phase = true;
  // The MPI-I/O prototype optimizes segmented non-collective access
  // but not its collective counterpart (paper Sec. 5.3).
  io.optimized_segmented_collective = false;
  io.shared_pointer_overhead = 250e-6;
  m.io = io;
  return m;
}

MachineSpec beowulf() {
  MachineSpec m;
  m.name = "Beowulf cluster (fast ethernet)";
  m.short_name = "beowulf";
  m.max_procs = 32;
  m.memory_per_proc = 256 * kMiB;  // L_max = 2 MB
  m.shared_memory = false;
  m.rmax_gflops_per_proc = 0.35;  // ~800 MHz commodity CPU
  m.paper_pingpong = 0.0;

  // 800 MHz commodity CPU: 1 flop/cycle nominal, but PC100-class
  // SDRAM (~350 MB/s STREAM) keeps dense kernels near 450 MF --
  // consistent with the 0.35 GF/proc HPL figure above.  Fast ethernet
  // carries every byte of comm.
  m.roofline.peak_flops = 450e6;
  m.roofline.mem_bw = mbps(350);
  m.roofline.cache_bytes = 256 * 1024;
  m.roofline.mem_latency = 150e-9;
  m.roofline.net_bw = mbps(11);

  m.costs.send_overhead = 15e-6;  // TCP/IP stack
  m.costs.recv_overhead = 15e-6;
  m.costs.barrier_hop = 60e-6;
  m.costs.bcast_hop = 60e-6;
  m.costs.reduce_hop = 60e-6;

  m.make_topology = [](int nprocs) {
    net::SmpClusterParams p;
    p.procs_per_node = 1;
    p.nodes = nprocs;
    p.placement = net::Placement::Sequential;
    p.per_process_copy_bw = mbps(400);
    p.node_memory_bw = mbps(800);
    p.nic_bw = mbps(11);      // 100 Mbit ethernet payload
    p.switch_bw = mbps(180);  // switch backplane
    p.intra_latency = 20e-6;
    p.inter_latency = 120e-6; // TCP round half
    return net::make_smp_cluster(p);
  };

  // Single NFS-class file server with one disk.
  pfsim::IoSystemConfig io;
  io.name = "NFS server, single disk";
  io.num_servers = 1;
  io.disks_per_server = 1;
  io.disk.bandwidth = mbps(25);
  io.disk.seek_time = 9e-3;
  io.disk.sequential_threshold = 128 * 1024;
  io.server_bandwidth = mbps(11);   // the server's own ethernet port
  io.client_link_bw = mbps(11);
  io.fabric_bandwidth = mbps(180);
  io.stripe_unit = 64 * 1024;
  io.block_size = 8 * 1024;
  io.cache_bytes = 256 * kMiB;
  io.request_overhead = 400e-6;     // NFS RPC
  io.server_request_overhead = 150e-6;
  io.collective_two_phase = true;
  io.optimized_segmented_collective = true;
  io.shared_pointer_overhead = 500e-6;
  m.io = io;
  return m;
}

std::vector<MachineSpec> all_machines() {
  std::vector<MachineSpec> v;
  v.push_back(cray_t3e_900());
  v.push_back(hitachi_sr8000(net::Placement::RoundRobin));
  v.push_back(hitachi_sr8000(net::Placement::Sequential));
  v.push_back(hitachi_sr2201());
  v.push_back(nec_sx5());
  v.push_back(nec_sx4());
  v.push_back(hp_v9000());
  v.push_back(sgi_sv1());
  v.push_back(ibm_sp());
  v.push_back(beowulf());
  return v;
}

MachineSpec machine_by_name(const std::string& short_name) {
  for (auto& m : all_machines()) {
    if (m.short_name == short_name) return m;
  }
  throw std::invalid_argument("unknown machine '" + short_name + "' (try: " +
                              machine_list() + ")");
}

std::string machine_list() {
  std::string out;
  for (const auto& m : all_machines()) {
    if (!out.empty()) out += ' ';
    out += m.short_name;
  }
  return out;
}

}  // namespace balbench::machines
