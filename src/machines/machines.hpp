// Machine models for the systems evaluated in the paper.
//
// Each MachineSpec bundles the parameters our substrate needs to stand
// in for one of the paper's platforms: a topology factory for the
// communication network, per-call software costs, memory per process
// (which fixes L_max = mem/128), the published Linpack R_max (for the
// balance factor of Fig. 1), and -- where the paper ran b_eff_io -- an
// I/O subsystem configuration.
//
// Parameter provenance: headline numbers (ping-pong bandwidth, memory
// sizes, R_max, I/O server counts, RAID striping) are taken from the
// paper and its references; remaining microparameters (latencies,
// per-call overheads, bus capacities) were calibrated so the simulated
// Table 1 / Figs 3-5 reproduce the paper's *shape* (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "parmsg/comm.hpp"
#include "pfsim/config.hpp"

namespace balbench::machines {

/// Per-process compute/memory roofline for the simulated HPCC-style
/// kernel suite (core/kernels, DESIGN.md Sec. 14).  All quantities are
/// per *process* (the same granularity as memory_per_proc): on SMP
/// nodes a "process" is one MPI rank's share of the node.
///
/// Provenance mirrors the rest of this file: peak flop rates and cache
/// sizes are published processor specs; sustainable memory bandwidths
/// are STREAM-class figures calibrated so the simulated kernels land
/// in the published R_max / stream neighbourhood (EXPERIMENTS.md
/// "Balance characterization").
struct Roofline {
  /// Dense floating-point peak, flop/s (NOT Linpack R_max — the kernel
  /// suite *measures* its own R_max against this ceiling).
  double peak_flops = 0.0;
  /// Sustainable streaming memory bandwidth, bytes/s (STREAM-class).
  double mem_bw = 0.0;
  /// Last-level cache per process, bytes.  0 = vector/streaming
  /// machine without a data cache: working sets never get the cache
  /// bandwidth boost, but random gathers pipeline at full mem_bw.
  std::int64_t cache_bytes = 0;
  /// Single random memory access latency, seconds (RandomAccess term;
  /// only charged on cache machines — vector gathers pipeline).
  double mem_latency = 0.0;
  /// Interconnect bandwidth one process sees in the kernels'
  /// communication phases, bytes/s (calibrated from ping-pong /
  /// per-process ring figures; shared-memory machines use copy bw).
  double net_bw = 0.0;

  [[nodiscard]] bool valid() const {
    return peak_flops > 0.0 && mem_bw > 0.0 && net_bw > 0.0;
  }
};

struct MachineSpec {
  std::string name;                // "Cray T3E/900-512"
  std::string short_name;          // "t3e" (CLI key)
  int max_procs = 0;
  std::int64_t memory_per_proc = 0;  // bytes
  bool shared_memory = false;
  /// Published Linpack R_max in GFlop/s for a given process count
  /// (linear interpolation on the per-proc value).
  double rmax_gflops_per_proc = 0.0;
  /// Reference ping-pong bandwidth from the paper's Table 1, bytes/s;
  /// 0 when the paper leaves the cell empty.
  double paper_pingpong = 0.0;

  /// Compute/memory model for the simulated kernel suite; valid() on
  /// every registered machine (asserted in tests/machines).
  Roofline roofline;

  parmsg::CommCosts costs;
  std::function<std::unique_ptr<net::Topology>(int nprocs)> make_topology;

  /// I/O subsystem; present for the platforms of Figs. 3-5.
  std::optional<pfsim::IoSystemConfig> io;

  [[nodiscard]] std::int64_t lmax() const {
    // Paper Sec. 4: L_max = min(128 MB, memory per processor / 128).
    const std::int64_t cap = 128LL * 1024 * 1024;
    return std::min(cap, memory_per_proc / 128);
  }
};

/// All systems of Table 1 / Figs 1, 3-5.
MachineSpec cray_t3e_900();
MachineSpec hitachi_sr8000(net::Placement placement);
MachineSpec hitachi_sr2201();
MachineSpec nec_sx5();
MachineSpec nec_sx4();
MachineSpec hp_v9000();
MachineSpec sgi_sv1();
MachineSpec ibm_sp();
/// Commodity Beowulf cluster (switched fast ethernet, NFS-class I/O):
/// not in the paper's Table 1, but the target of its Sec. 6 "Top
/// Clusters" plan -- included to contrast balanced supercomputers with
/// a commodity cluster.
MachineSpec beowulf();

/// Registry access for CLI tools: all machines / lookup by short name.
std::vector<MachineSpec> all_machines();
MachineSpec machine_by_name(const std::string& short_name);

/// Space-separated short names of every registered machine, in
/// registry order ("t3e sr8000rr sr8000 ...").  Generated from
/// all_machines() so CLI help text and error messages can never drift
/// from the registry.
std::string machine_list();

}  // namespace balbench::machines
