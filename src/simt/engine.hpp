// Discrete-event engine with virtual time and simulated processes.
//
// Model: a set of processes (fibers) plus a time-ordered event queue.
// The engine runs every runnable process until it blocks, then pops the
// next event, advances the virtual clock and fires the event's
// callback (which typically wakes processes).  Simulation ends when no
// process is runnable and no event is pending; if unfinished processes
// remain at that point the workload deadlocked and the engine throws.
//
// Determinism: ties in event time break by insertion order, runnable
// processes execute in FIFO order, and no wall-clock source is
// consulted anywhere — a simulation is a pure function of its inputs.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "simt/fiber.hpp"

namespace balbench::simt {

/// Virtual time in seconds.
using Time = double;

class Engine;

/// A simulated process.  Instances are created via Engine::spawn and
/// owned by the engine; user code receives references.
class Process {
 public:
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] bool finished() const { return fiber_->finished(); }

  /// Block the calling process for `dt` seconds of virtual time.
  /// Must be called from inside this process.
  void sleep(Time dt);

  /// Block until another party calls wake().  Returns the virtual time
  /// at wake-up.
  Time block();

  /// Make a blocked process runnable again (called from event
  /// callbacks or from other processes).
  void wake();

 private:
  friend class Engine;
  Process(Engine* engine, int id) : engine_(engine), id_(id) {}

  Engine* engine_;
  int id_;
  std::unique_ptr<Fiber> fiber_;
  bool runnable_ = false;   // queued in the run queue
  bool blocked_ = false;    // waiting for wake()
};

class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown out of Process::block() in every process of an aborting
/// simulation so each fiber unwinds its own stack cleanly (running
/// destructors, releasing buffers) instead of being abandoned
/// mid-suspend.  Engine::run() rethrows the *original* abort cause;
/// the per-fiber AbortErrors are secondary and never escape.
class AbortError : public std::runtime_error {
 public:
  explicit AbortError(const std::string& what) : std::runtime_error(what) {}
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const { return now_; }

  /// Create a process executing `fn(process)`.  Must be called before
  /// or during run(); processes spawned during the run start
  /// immediately (at the current virtual time).
  Process& spawn(std::function<void(Process&)> fn,
                 std::size_t stack_size = Fiber::kDefaultStackSize);

  /// Schedule `fn` to run at absolute virtual time `t` (>= now).
  /// Returns an id usable with cancel().
  std::uint64_t schedule_at(Time t, std::function<void()> fn);
  std::uint64_t schedule_after(Time dt, std::function<void()> fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  /// Cancel a scheduled event.  No-op if it already fired.
  void cancel(std::uint64_t event_id);

  /// Run until all processes finished and the event queue is empty.
  /// Throws DeadlockError if processes remain blocked with no pending
  /// events.  If a process throws, the engine *aborts cooperatively*:
  /// every other live process is woken and unwinds via AbortError, and
  /// the first (original) exception is rethrown once all fiber stacks
  /// have been released -- a failed session never leaks fiber state.
  void run();

  /// Virtual-time deadline for this run.  Once the next event would
  /// fire strictly after `t` while unfinished processes remain, the
  /// engine stops at `t` and aborts with an AbortError (the retry
  /// layer's per-cell timeout, DESIGN.md Sec. 12.2).  Implemented as a
  /// check in the event loop, not as a scheduled event, so setting an
  /// unreachable deadline leaves the event sequence -- and therefore
  /// every reported number -- untouched.  Default: no deadline.
  void set_deadline(Time t) { deadline_ = t; }

  /// True once an abort started; Process::block() throws from then on.
  [[nodiscard]] bool aborted() const { return aborted_; }

  /// Number of processes spawned so far.
  [[nodiscard]] std::size_t process_count() const { return processes_.size(); }

  /// Statistics for engine micro-benchmarks.
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }
  [[nodiscard]] std::uint64_t context_switches() const { return switches_; }

 private:
  friend class Process;

  struct Event {
    Time time;
    std::uint64_t seq;  // tie-break + cancellation id
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void make_runnable(Process& p);
  void drain_run_queue();
  void start_abort(std::exception_ptr error);
  [[nodiscard]] bool has_unfinished_process() const;

  Time now_ = 0.0;
  Time deadline_ = std::numeric_limits<Time>::infinity();
  bool aborted_ = false;
  std::exception_ptr abort_error_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_fired_ = 0;
  std::uint64_t switches_ = 0;
  std::vector<std::unique_ptr<Process>> processes_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<std::uint64_t> cancelled_;
  std::queue<Process*> run_queue_;
  bool running_ = false;
};

}  // namespace balbench::simt
