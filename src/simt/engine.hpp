// Discrete-event engine with virtual time and simulated processes.
//
// Model: a set of processes (fibers) plus a time-ordered event queue.
// The engine runs every runnable process until it blocks, then pops the
// next event, advances the virtual clock and fires the event's
// callback (which typically wakes processes).  Simulation ends when no
// process is runnable and no event is pending; if unfinished processes
// remain at that point the workload deadlocked and the engine throws.
//
// Determinism: ties in event time break by insertion order, runnable
// processes execute in FIFO order, and no wall-clock source is
// consulted anywhere — a simulation is a pure function of its inputs.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "simt/fiber.hpp"

namespace balbench::simt {

/// Virtual time in seconds.
using Time = double;

class Engine;

/// A simulated process.  Instances are created via Engine::spawn and
/// owned by the engine; user code receives references.
class Process {
 public:
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] bool finished() const { return fiber_->finished(); }

  /// Block the calling process for `dt` seconds of virtual time.
  /// Must be called from inside this process.
  void sleep(Time dt);

  /// Block until another party calls wake().  Returns the virtual time
  /// at wake-up.
  Time block();

  /// Make a blocked process runnable again (called from event
  /// callbacks or from other processes).
  void wake();

 private:
  friend class Engine;
  Process(Engine* engine, int id) : engine_(engine), id_(id) {}

  Engine* engine_;
  int id_;
  std::unique_ptr<Fiber> fiber_;
  bool runnable_ = false;   // queued in the run queue
  bool blocked_ = false;    // waiting for wake()
};

/// Min-heap of pending events ordered by (time, seq) with an index
/// from a stable per-event *handle* to the heap position, so cancel
/// and reschedule are O(log n) instead of the tombstone-list scan
/// every pop used to pay (docs/SIMULATOR.md "Event queue").  The
/// sequence number is the deterministic tie-break: two events at the
/// same virtual time fire in scheduling order.  Handles are small
/// recycled integers tagged with a generation counter, so the position
/// index is a flat vector (no hashing on the heap's hot sift path) and
/// a stale id -- its event already fired or cancelled -- is recognised
/// and ignored.
class EventQueue {
 public:
  struct Event {
    Time time = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;  // owning handle slot (internal)
    std::function<void()> fn;
  };

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  /// Earliest pending event: smallest (time, seq).
  [[nodiscard]] const Event& top() const { return heap_.front(); }

  /// Returns a non-zero id for cancel()/reschedule().  `seq` is the
  /// caller-provided tie-break and must be unique among pending events.
  std::uint64_t push(Time time, std::uint64_t seq, std::function<void()> fn);
  Event pop();
  /// Removes the event with this id.  Returns false (and does nothing)
  /// if it is not pending -- already fired, cancelled, or never
  /// scheduled.
  bool cancel(std::uint64_t id);
  /// Moves a pending event to (time, new_seq), keeping its callback
  /// and its id.  Equivalent to cancel + push of the same fn but
  /// without touching the std::function.  Returns false if `id` is
  /// not pending.
  bool reschedule(std::uint64_t id, Time time, std::uint64_t new_seq);

 private:
  /// Handle table entry; `pos` is kInvalidPos while the slot is free.
  struct Slot {
    std::uint32_t pos = 0;
    std::uint32_t generation = 1;  // >= 1, so no valid id is ever 0
  };
  static constexpr std::uint32_t kInvalidPos = 0xFFFFFFFFu;

  [[nodiscard]] bool before(std::size_t a, std::size_t b) const {
    if (heap_[a].time != heap_[b].time) return heap_[a].time < heap_[b].time;
    return heap_[a].seq < heap_[b].seq;
  }
  /// Heap position of the event with this id, or kInvalidPos.
  [[nodiscard]] std::uint32_t find(std::uint64_t id) const;
  void release_slot(std::uint32_t slot);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void move_to(std::size_t dst, std::size_t src);
  /// Removes heap position i, restoring the heap property.
  void remove_at(std::size_t i);

  std::vector<Event> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown out of Process::block() in every process of an aborting
/// simulation so each fiber unwinds its own stack cleanly (running
/// destructors, releasing buffers) instead of being abandoned
/// mid-suspend.  Engine::run() rethrows the *original* abort cause;
/// the per-fiber AbortErrors are secondary and never escape.
class AbortError : public std::runtime_error {
 public:
  explicit AbortError(const std::string& what) : std::runtime_error(what) {}
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const { return now_; }

  /// Create a process executing `fn(process)`.  Must be called before
  /// or during run(); processes spawned during the run start
  /// immediately (at the current virtual time).  `stack_size` 0 means
  /// StackPool::default_stack_size() (BALBENCH_FIBER_STACK_KB knob).
  Process& spawn(std::function<void(Process&)> fn, std::size_t stack_size = 0);

  /// Schedule `fn` to run at absolute virtual time `t` (>= now).
  /// Returns an id usable with cancel().
  std::uint64_t schedule_at(Time t, std::function<void()> fn);
  std::uint64_t schedule_after(Time dt, std::function<void()> fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  /// Cancel a scheduled event.  No-op if it already fired.  O(log n).
  void cancel(std::uint64_t event_id);

  /// Move a pending event to absolute time `t` (>= now), keeping its
  /// callback and its id but assigning a fresh internal sequence
  /// number, so same-time ordering is exactly as if the event had been
  /// cancelled and rescheduled.  Returns the id on success, or 0 (and
  /// leaves the queue untouched) if `event_id` is not pending.
  /// O(log n).
  std::uint64_t reschedule_at(std::uint64_t event_id, Time t);
  std::uint64_t reschedule_after(std::uint64_t event_id, Time dt) {
    return reschedule_at(event_id, now_ + dt);
  }

  /// Run until all processes finished and the event queue is empty.
  /// Throws DeadlockError if processes remain blocked with no pending
  /// events.  If a process throws, the engine *aborts cooperatively*:
  /// every other live process is woken and unwinds via AbortError, and
  /// the first (original) exception is rethrown once all fiber stacks
  /// have been released -- a failed session never leaks fiber state.
  void run();

  /// Virtual-time deadline for this run.  Once the next event would
  /// fire strictly after `t` while unfinished processes remain, the
  /// engine stops at `t` and aborts with an AbortError (the retry
  /// layer's per-cell timeout, DESIGN.md Sec. 12.2).  Implemented as a
  /// check in the event loop, not as a scheduled event, so setting an
  /// unreachable deadline leaves the event sequence -- and therefore
  /// every reported number -- untouched.  Default: no deadline.
  void set_deadline(Time t) { deadline_ = t; }

  /// True once an abort started; Process::block() throws from then on.
  [[nodiscard]] bool aborted() const { return aborted_; }

  /// Number of processes spawned so far.
  [[nodiscard]] std::size_t process_count() const { return processes_.size(); }

  /// Statistics for engine micro-benchmarks.
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }
  [[nodiscard]] std::uint64_t context_switches() const { return switches_; }
  /// Pending (not yet fired, not cancelled) events.
  [[nodiscard]] std::size_t pending_events() const { return events_.size(); }
  /// Largest number of processes alive (spawned, unfinished) at once.
  /// A pure function of the simulated configuration, so safe for run
  /// records (DESIGN.md Sec. 10.2).
  [[nodiscard]] std::size_t live_process_high_water() const {
    return live_high_water_;
  }

 private:
  friend class Process;

  void make_runnable(Process& p);
  void drain_run_queue();
  void start_abort(std::exception_ptr error);
  [[nodiscard]] bool has_unfinished_process() const;

  Time now_ = 0.0;
  Time deadline_ = std::numeric_limits<Time>::infinity();
  bool aborted_ = false;
  std::exception_ptr abort_error_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_fired_ = 0;
  std::uint64_t switches_ = 0;
  std::size_t live_count_ = 0;
  std::size_t live_high_water_ = 0;
  std::vector<std::unique_ptr<Process>> processes_;
  EventQueue events_;
  std::queue<Process*> run_queue_;
  bool running_ = false;
};

}  // namespace balbench::simt
