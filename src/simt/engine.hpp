// Discrete-event engine with virtual time and simulated processes.
//
// Model: a set of processes (fibers) plus a time-ordered event queue.
// The engine runs every runnable process until it blocks, then pops the
// next event, advances the virtual clock and fires the event's
// callback (which typically wakes processes).  Simulation ends when no
// process is runnable and no event is pending; if unfinished processes
// remain at that point the workload deadlocked and the engine throws.
//
// Determinism: ties in event time break by insertion order, runnable
// processes execute in FIFO order, and no wall-clock source is
// consulted anywhere — a simulation is a pure function of its inputs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "simt/fiber.hpp"

namespace balbench::simt {

/// Virtual time in seconds.
using Time = double;

class Engine;

/// A simulated process.  Instances are created via Engine::spawn and
/// owned by the engine; user code receives references.
class Process {
 public:
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] bool finished() const { return fiber_->finished(); }

  /// Block the calling process for `dt` seconds of virtual time.
  /// Must be called from inside this process.
  void sleep(Time dt);

  /// Block until another party calls wake().  Returns the virtual time
  /// at wake-up.
  Time block();

  /// Make a blocked process runnable again (called from event
  /// callbacks or from other processes).
  void wake();

 private:
  friend class Engine;
  Process(Engine* engine, int id) : engine_(engine), id_(id) {}

  Engine* engine_;
  int id_;
  std::unique_ptr<Fiber> fiber_;
  bool runnable_ = false;   // queued in the run queue
  bool blocked_ = false;    // waiting for wake()
};

class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const { return now_; }

  /// Create a process executing `fn(process)`.  Must be called before
  /// or during run(); processes spawned during the run start
  /// immediately (at the current virtual time).
  Process& spawn(std::function<void(Process&)> fn,
                 std::size_t stack_size = Fiber::kDefaultStackSize);

  /// Schedule `fn` to run at absolute virtual time `t` (>= now).
  /// Returns an id usable with cancel().
  std::uint64_t schedule_at(Time t, std::function<void()> fn);
  std::uint64_t schedule_after(Time dt, std::function<void()> fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  /// Cancel a scheduled event.  No-op if it already fired.
  void cancel(std::uint64_t event_id);

  /// Run until all processes finished and the event queue is empty.
  /// Throws DeadlockError if processes remain blocked with no pending
  /// events, and rethrows the first exception escaping a process.
  void run();

  /// Number of processes spawned so far.
  [[nodiscard]] std::size_t process_count() const { return processes_.size(); }

  /// Statistics for engine micro-benchmarks.
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }
  [[nodiscard]] std::uint64_t context_switches() const { return switches_; }

 private:
  friend class Process;

  struct Event {
    Time time;
    std::uint64_t seq;  // tie-break + cancellation id
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void make_runnable(Process& p);
  void drain_run_queue();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_fired_ = 0;
  std::uint64_t switches_ = 0;
  std::vector<std::unique_ptr<Process>> processes_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<std::uint64_t> cancelled_;
  std::queue<Process*> run_queue_;
  bool running_ = false;
};

}  // namespace balbench::simt
