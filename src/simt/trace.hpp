// Virtual-time activity tracing.
//
// A Tracer collects per-process activity spans (compute, barrier,
// waiting on messages, I/O, ...) during a simulation run and renders
// them as a per-process ASCII timeline -- a profiler view of where the
// simulated machine spends its virtual time.  The communication layer
// and the MPI-I/O layer record into it when one is attached to the
// transport; recording is O(1) per span and disabled entirely when no
// tracer is attached.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace balbench::simt {

/// Categories are single characters so the timeline stays readable:
/// the category char is what gets drawn.
struct TraceSpan {
  double start = 0.0;
  double end = 0.0;
  int process = 0;
  char category = '?';
  std::string label;
};

class Tracer {
 public:
  /// Spans beyond this cap are dropped (the drop count is reported);
  /// keeps runaway runs bounded.
  explicit Tracer(std::size_t max_spans = 1 << 20) : max_spans_(max_spans) {}

  void record(double start, double end, int process, char category,
              std::string label = {});

  [[nodiscard]] const std::vector<TraceSpan>& spans() const { return spans_; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  void clear();

  /// Register a legend entry for a category character.
  void describe(char category, std::string meaning);

  /// Per-process timeline: one row per process (up to `max_rows`),
  /// `width` time buckets; each cell shows the category that dominated
  /// the bucket.  Includes per-category virtual-time totals.
  void render_timeline(std::ostream& os, int width = 72,
                       int max_rows = 16) const;

  /// start,end,process,category,label
  void write_csv(std::ostream& os) const;

  /// Total recorded virtual time per category.
  [[nodiscard]] std::map<char, double> category_totals() const;

 private:
  std::size_t max_spans_;
  std::size_t dropped_ = 0;
  std::vector<TraceSpan> spans_;
  std::map<char, std::string> legend_;
};

}  // namespace balbench::simt
