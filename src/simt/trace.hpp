// Virtual-time activity tracing.
//
// A Tracer collects per-process activity spans (compute, barrier,
// waiting on messages, I/O, ...) during a simulation run and renders
// them as a per-process ASCII timeline -- a profiler view of where the
// simulated machine spends its virtual time.  The communication layer
// and the MPI-I/O layer record into it when one is attached to the
// transport; recording is O(1) per span and disabled entirely when no
// tracer is attached.
//
// All times in this header are VIRTUAL seconds (simt::Engine clock),
// never host wall-clock.  For an interactive view, convert a tracer to
// Chrome trace_event JSON with obs::write_chrome_trace() and open the
// file in chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace balbench::simt {

/// One activity interval of one simulated process.
/// Categories are single characters so the ASCII timeline stays
/// readable: the category char is what gets drawn.
struct TraceSpan {
  double start = 0.0;   // virtual seconds (engine clock of its session)
  double end = 0.0;     // virtual seconds, end >= start
  int process = 0;      // simulated rank within the session
  char category = '?';  // legend key, see Tracer::describe()
  std::string label;    // optional human-readable refinement
};

/// A tracer can span several engine *sessions* (e.g. one per b_eff
/// measurement cell, each with its own virtual clock starting at 0).
/// begin_session() marks the boundary; exporters use it to give every
/// session its own timeline instead of overlaying clocks.
struct TraceSession {
  std::size_t first_span = 0;  // index into spans() of the first span
  std::string label;           // e.g. "cell 17: ring-2/Sendrecv"
};

class Tracer {
 public:
  /// Spans beyond this cap are dropped (the drop count is reported);
  /// keeps runaway runs bounded.
  explicit Tracer(std::size_t max_spans = 1 << 20) : max_spans_(max_spans) {}

  /// Records [start, end] virtual seconds of `category` activity on
  /// simulated rank `process`.  O(1); spans with end < start are
  /// ignored.
  void record(double start, double end, int process, char category,
              std::string label = {});

  /// Marks the start of a new engine session; subsequent spans belong
  /// to it.  The transport calls this once per run when a tracer is
  /// attached.
  void begin_session(std::string label);

  [[nodiscard]] const std::vector<TraceSpan>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<TraceSession>& sessions() const {
    return sessions_;
  }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  /// Drops all spans and sessions; the legend is kept.
  void clear();

  /// Register a legend entry for a category character (e.g. 'b' ->
  /// "collective").
  void describe(char category, std::string meaning);
  /// Category char -> meaning, as registered via describe().
  [[nodiscard]] const std::map<char, std::string>& legend() const {
    return legend_;
  }

  /// Per-process timeline: one row per process (up to `max_rows`),
  /// `width` time buckets; each cell shows the category that dominated
  /// the bucket.  Includes per-category virtual-time totals.
  void render_timeline(std::ostream& os, int width = 72,
                       int max_rows = 16) const;

  /// start,end,process,category,label -- times in virtual seconds.
  void write_csv(std::ostream& os) const;

  /// Total recorded virtual seconds per category (sum of span lengths;
  /// concurrent spans count multiply).
  [[nodiscard]] std::map<char, double> category_totals() const;

 private:
  std::size_t max_spans_;
  std::size_t dropped_ = 0;
  std::vector<TraceSpan> spans_;
  std::vector<TraceSession> sessions_;
  std::map<char, std::string> legend_;
};

}  // namespace balbench::simt
