#include "simt/engine.hpp"

#include <algorithm>
#include <cassert>

namespace balbench::simt {

void Process::sleep(Time dt) {
  assert(dt >= 0.0);
  engine_->schedule_after(dt, [this] { wake(); });
  block();
}

Time Process::block() {
  assert(Fiber::current() == fiber_.get() && "block() outside own fiber");
  // Abort check on entry *and* after resume: a process woken by
  // Engine::start_abort must unwind instead of continuing its protocol
  // against peers that no longer exist.
  if (engine_->aborted()) {
    throw AbortError("process id=" + std::to_string(id_) +
                     " unwound by session abort");
  }
  blocked_ = true;
  Fiber::suspend();
  if (engine_->aborted()) {
    throw AbortError("process id=" + std::to_string(id_) +
                     " unwound by session abort");
  }
  return engine_->now();
}

void Process::wake() {
  if (!blocked_) return;  // spurious wake (e.g. cancelled timeout races)
  blocked_ = false;
  engine_->make_runnable(*this);
}

Process& Engine::spawn(std::function<void(Process&)> fn, std::size_t stack_size) {
  auto proc = std::unique_ptr<Process>(
      new Process(this, static_cast<int>(processes_.size())));
  Process* p = proc.get();
  proc->fiber_ = std::make_unique<Fiber>([p, fn = std::move(fn)] { fn(*p); },
                                         stack_size);
  processes_.push_back(std::move(proc));
  make_runnable(*p);
  return *p;
}

std::uint64_t Engine::schedule_at(Time t, std::function<void()> fn) {
  assert(t >= now_ && "event scheduled in the past");
  const std::uint64_t seq = next_seq_++;
  events_.push(Event{std::max(t, now_), seq, std::move(fn)});
  return seq;
}

void Engine::cancel(std::uint64_t event_id) {
  cancelled_.push_back(event_id);
}

void Engine::make_runnable(Process& p) {
  if (p.runnable_ || p.finished()) return;
  p.runnable_ = true;
  run_queue_.push(&p);
}

void Engine::start_abort(std::exception_ptr error) {
  if (!aborted_) {
    aborted_ = true;
    abort_error_ = std::move(error);
  }
  // Wake every blocked process; each resumes inside block(), observes
  // aborted_ and unwinds via AbortError.  wake() enqueues them on the
  // run queue, so the drain loop in progress keeps resuming fibers
  // until all stacks are released.
  for (const auto& p : processes_) {
    if (p->blocked_) p->wake();
  }
}

bool Engine::has_unfinished_process() const {
  for (const auto& p : processes_) {
    if (!p->finished()) return true;
  }
  return false;
}

void Engine::drain_run_queue() {
  while (!run_queue_.empty()) {
    Process* p = run_queue_.front();
    run_queue_.pop();
    p->runnable_ = false;
    if (p->finished()) continue;
    ++switches_;
    p->fiber_->resume();
    try {
      p->fiber_->rethrow_if_failed();
    } catch (const AbortError&) {
      // Secondary: this fiber was unwound by an abort already in
      // progress; the original cause is held in abort_error_.
    } catch (...) {
      start_abort(std::current_exception());
    }
  }
}

void Engine::run() {
  assert(!running_ && "Engine::run is not reentrant");
  running_ = true;
  drain_run_queue();
  while (!events_.empty() && !aborted_) {
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    if (std::find(cancelled_.begin(), cancelled_.end(), ev.seq) !=
        cancelled_.end()) {
      cancelled_.erase(std::remove(cancelled_.begin(), cancelled_.end(), ev.seq),
                       cancelled_.end());
      continue;
    }
    if (ev.time > deadline_ && has_unfinished_process()) {
      // Per-cell timeout: the clock stops *at* the deadline (never at
      // the overdue event's time) and the run aborts cooperatively.
      now_ = deadline_;
      start_abort(std::make_exception_ptr(AbortError(
          "virtual-time deadline of " + std::to_string(deadline_) +
          " s exceeded with unfinished processes")));
      drain_run_queue();
      break;
    }
    assert(ev.time >= now_);
    now_ = ev.time;
    ++events_fired_;
    ev.fn();
    drain_run_queue();
  }
  running_ = false;

  if (aborted_) {
    // Every fiber has unwound by now (drain_run_queue resumed each
    // woken process until it threw); surface the original cause.
    std::rethrow_exception(abort_error_);
  }

  for (const auto& p : processes_) {
    if (!p->finished()) {
      throw DeadlockError(
          "simulation ended with blocked process id=" + std::to_string(p->id()) +
          " (no pending events; the simulated workload deadlocked)");
    }
  }
}

}  // namespace balbench::simt
