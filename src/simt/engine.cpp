#include "simt/engine.hpp"

#include <cassert>
#include <utility>

namespace balbench::simt {

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

std::uint32_t EventQueue::find(std::uint64_t id) const {
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return kInvalidPos;
  const Slot& s = slots_[slot];
  if (s.generation != generation || s.pos == kInvalidPos) return kInvalidPos;
  return s.pos;
}

void EventQueue::release_slot(std::uint32_t slot) {
  slots_[slot].pos = kInvalidPos;
  ++slots_[slot].generation;  // invalidates every outstanding id
  free_slots_.push_back(slot);
}

void EventQueue::move_to(std::size_t dst, std::size_t src) {
  heap_[dst] = std::move(heap_[src]);
  slots_[heap_[dst].slot].pos = static_cast<std::uint32_t>(dst);
}

void EventQueue::sift_up(std::size_t i) {
  Event ev = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    const Event& p = heap_[parent];
    if (p.time < ev.time || (p.time == ev.time && p.seq < ev.seq)) break;
    move_to(i, parent);
    i = parent;
  }
  heap_[i] = std::move(ev);
  slots_[heap_[i].slot].pos = static_cast<std::uint32_t>(i);
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Event ev = std::move(heap_[i]);
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && before(child + 1, child)) ++child;
    const Event& c = heap_[child];
    if (ev.time < c.time || (ev.time == c.time && ev.seq < c.seq)) break;
    move_to(i, child);
    i = child;
  }
  heap_[i] = std::move(ev);
  slots_[heap_[i].slot].pos = static_cast<std::uint32_t>(i);
}

std::uint64_t EventQueue::push(Time time, std::uint64_t seq,
                               std::function<void()> fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  }
  heap_.push_back(Event{time, seq, slot, std::move(fn)});
  sift_up(heap_.size() - 1);
  return (static_cast<std::uint64_t>(slots_[slot].generation) << 32) |
         static_cast<std::uint64_t>(slot);
}

EventQueue::Event EventQueue::pop() {
  assert(!heap_.empty());
  Event ev = std::move(heap_.front());
  release_slot(ev.slot);
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  return ev;
}

void EventQueue::remove_at(std::size_t i) {
  release_slot(heap_[i].slot);
  const std::size_t last = heap_.size() - 1;
  if (i == last) {
    heap_.pop_back();
    return;
  }
  heap_[i] = std::move(heap_[last]);
  heap_.pop_back();
  // The element filling the hole may need to travel either direction.
  const std::uint32_t moved = heap_[i].slot;
  sift_down(i);
  sift_up(slots_[moved].pos);
}

bool EventQueue::cancel(std::uint64_t id) {
  const std::uint32_t pos = find(id);
  if (pos == kInvalidPos) return false;
  remove_at(pos);
  return true;
}

bool EventQueue::reschedule(std::uint64_t id, Time time, std::uint64_t new_seq) {
  const std::uint32_t pos = find(id);
  if (pos == kInvalidPos) return false;
  heap_[pos].time = time;
  heap_[pos].seq = new_seq;
  const std::uint32_t slot = heap_[pos].slot;
  sift_down(pos);
  sift_up(slots_[slot].pos);
  return true;
}

void Process::sleep(Time dt) {
  assert(dt >= 0.0);
  engine_->schedule_after(dt, [this] { wake(); });
  block();
}

Time Process::block() {
  assert(Fiber::current() == fiber_.get() && "block() outside own fiber");
  // Abort check on entry *and* after resume: a process woken by
  // Engine::start_abort must unwind instead of continuing its protocol
  // against peers that no longer exist.
  if (engine_->aborted()) {
    throw AbortError("process id=" + std::to_string(id_) +
                     " unwound by session abort");
  }
  blocked_ = true;
  Fiber::suspend();
  if (engine_->aborted()) {
    throw AbortError("process id=" + std::to_string(id_) +
                     " unwound by session abort");
  }
  return engine_->now();
}

void Process::wake() {
  if (!blocked_) return;  // spurious wake (e.g. cancelled timeout races)
  blocked_ = false;
  engine_->make_runnable(*this);
}

Process& Engine::spawn(std::function<void(Process&)> fn, std::size_t stack_size) {
  auto proc = std::unique_ptr<Process>(
      new Process(this, static_cast<int>(processes_.size())));
  Process* p = proc.get();
  proc->fiber_ = std::make_unique<Fiber>([p, fn = std::move(fn)] { fn(*p); },
                                         stack_size);
  processes_.push_back(std::move(proc));
  ++live_count_;
  if (live_count_ > live_high_water_) live_high_water_ = live_count_;
  make_runnable(*p);
  return *p;
}

std::uint64_t Engine::schedule_at(Time t, std::function<void()> fn) {
  assert(t >= now_ && "event scheduled in the past");
  return events_.push(std::max(t, now_), next_seq_++, std::move(fn));
}

void Engine::cancel(std::uint64_t event_id) {
  events_.cancel(event_id);
}

std::uint64_t Engine::reschedule_at(std::uint64_t event_id, Time t) {
  assert(t >= now_ && "event rescheduled into the past");
  // The fresh sequence number keeps same-time ordering exactly as if
  // the event had been cancelled and scheduled anew; it is consumed
  // only on success so the seq stream stays a pure function of the
  // simulated workload.
  if (!events_.reschedule(event_id, std::max(t, now_), next_seq_)) return 0;
  ++next_seq_;
  return event_id;
}

void Engine::make_runnable(Process& p) {
  if (p.runnable_ || p.finished()) return;
  p.runnable_ = true;
  run_queue_.push(&p);
}

void Engine::start_abort(std::exception_ptr error) {
  if (!aborted_) {
    aborted_ = true;
    abort_error_ = std::move(error);
  }
  // Wake every blocked process; each resumes inside block(), observes
  // aborted_ and unwinds via AbortError.  wake() enqueues them on the
  // run queue, so the drain loop in progress keeps resuming fibers
  // until all stacks are released.
  for (const auto& p : processes_) {
    if (p->blocked_) p->wake();
  }
}

bool Engine::has_unfinished_process() const {
  for (const auto& p : processes_) {
    if (!p->finished()) return true;
  }
  return false;
}

void Engine::drain_run_queue() {
  while (!run_queue_.empty()) {
    Process* p = run_queue_.front();
    run_queue_.pop();
    p->runnable_ = false;
    if (p->finished()) continue;
    ++switches_;
    p->fiber_->resume();
    if (p->finished()) --live_count_;
    try {
      p->fiber_->rethrow_if_failed();
    } catch (const AbortError&) {
      // Secondary: this fiber was unwound by an abort already in
      // progress; the original cause is held in abort_error_.
    } catch (...) {
      start_abort(std::current_exception());
    }
  }
}

void Engine::run() {
  assert(!running_ && "Engine::run is not reentrant");
  running_ = true;
  drain_run_queue();
  while (!events_.empty() && !aborted_) {
    EventQueue::Event ev = events_.pop();
    if (ev.time > deadline_ && has_unfinished_process()) {
      // Per-cell timeout: the clock stops *at* the deadline (never at
      // the overdue event's time) and the run aborts cooperatively.
      now_ = deadline_;
      start_abort(std::make_exception_ptr(AbortError(
          "virtual-time deadline of " + std::to_string(deadline_) +
          " s exceeded with unfinished processes")));
      drain_run_queue();
      break;
    }
    assert(ev.time >= now_);
    now_ = ev.time;
    ++events_fired_;
    ev.fn();
    drain_run_queue();
  }
  running_ = false;

  if (aborted_) {
    // Every fiber has unwound by now (drain_run_queue resumed each
    // woken process until it threw); surface the original cause.
    std::rethrow_exception(abort_error_);
  }

  for (const auto& p : processes_) {
    if (!p->finished()) {
      throw DeadlockError(
          "simulation ended with blocked process id=" + std::to_string(p->id()) +
          " (no pending events; the simulated workload deadlocked)");
    }
  }
}

}  // namespace balbench::simt
