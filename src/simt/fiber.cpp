#include "simt/fiber.hpp"

#include <cassert>
#include <cstdint>
#include <stdexcept>

// AddressSanitizer must be told about every manual stack switch, or
// its shadow memory keeps describing the *old* stack and every local
// on the fiber stack reads as poisoned (false stack-use-after-return
// reports, broken fake-stack bookkeeping).  The protocol is the
// documented pair from <sanitizer/common_interface_defs.h>:
// __sanitizer_start_switch_fiber immediately before swapcontext,
// __sanitizer_finish_switch_fiber as the first thing on the
// destination stack.  The `asan` CMake preset builds with
// -fsanitize=address,undefined and runs the robust-labelled tests
// through these annotations.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BALBENCH_ASAN_FIBERS 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define BALBENCH_ASAN_FIBERS 1
#endif

#ifdef BALBENCH_ASAN_FIBERS
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace balbench::simt {

namespace {
thread_local Fiber* g_current_fiber = nullptr;

#ifdef BALBENCH_ASAN_FIBERS
inline void asan_start_switch(void** fake_save, const void* bottom,
                              std::size_t size) {
  __sanitizer_start_switch_fiber(fake_save, bottom, size);
}
inline void asan_finish_switch(void* fake, const void** prev_bottom,
                               std::size_t* prev_size) {
  __sanitizer_finish_switch_fiber(fake, prev_bottom, prev_size);
}
#else
inline void asan_start_switch(void**, const void*, std::size_t) {}
inline void asan_finish_switch(void*, const void**, std::size_t*) {}
#endif
}  // namespace

Fiber* Fiber::current() { return g_current_fiber; }

Fiber::Fiber(Fn fn, std::size_t stack_size)
    : fn_(std::move(fn)), stack_(StackPool::acquire(stack_size)) {
  if (getcontext(&context_) != 0) {
    StackPool::release(stack_);
    throw std::runtime_error("Fiber: getcontext failed");
  }
  context_.uc_stack.ss_sp = stack_.base;
  context_.uc_stack.ss_size = stack_.size;
  context_.uc_link = nullptr;  // we always switch back explicitly
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned int>(self >> 32),
              static_cast<unsigned int>(self & 0xFFFFFFFFu));
}

Fiber::~Fiber() {
#ifdef BALBENCH_ASAN_FIBERS
  // The pool will hand this stack to a future fiber; stale shadow
  // poison from this fiber's deepest frames must not outlive it.
  __asan_unpoison_memory_region(stack_.base, stack_.size);
#endif
  StackPool::release(stack_);
}

void Fiber::trampoline(unsigned int hi, unsigned int lo) {
  const auto self = (static_cast<std::uintptr_t>(hi) << 32) |
                    static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self)->run();
}

void Fiber::run() {
  // First instruction on this fiber's stack: complete the switch the
  // resumer started, learning the resumer's stack extents so suspend()
  // and the final exit below can announce switches back to it.
  asan_finish_switch(nullptr, &asan_resumer_bottom_, &asan_resumer_size_);
  try {
    fn_();
  } catch (...) {
    error_ = std::current_exception();
  }
  finished_ = true;
  // Return control to the resumer; this fiber must never be resumed
  // again (resume() asserts on finished_).
  Fiber* self = g_current_fiber;
  g_current_fiber = nullptr;
  // nullptr fake-stack slot: the fiber is exiting for good, so ASan
  // frees its fake-stack allocations instead of preserving them.
  asan_start_switch(nullptr, self->asan_resumer_bottom_,
                    self->asan_resumer_size_);
  swapcontext(&self->context_, &self->return_context_);
  // Unreachable.
  assert(false && "finished fiber was resumed");
}

void Fiber::resume() {
  assert(g_current_fiber == nullptr && "nested fiber resume not supported");
  assert(!finished_ && "resume of finished fiber");
  started_ = true;
  g_current_fiber = this;
  asan_start_switch(&asan_resumer_fake_, stack_.base, stack_.size);
  if (swapcontext(&return_context_, &context_) != 0) {
    g_current_fiber = nullptr;
    throw std::runtime_error("Fiber: swapcontext failed");
  }
  // Back on the resumer's stack (the fiber suspended or finished).
  asan_finish_switch(asan_resumer_fake_, nullptr, nullptr);
  g_current_fiber = nullptr;
}

void Fiber::suspend() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr && "Fiber::suspend outside of a fiber");
  g_current_fiber = nullptr;
  asan_start_switch(&self->asan_fiber_fake_, self->asan_resumer_bottom_,
                    self->asan_resumer_size_);
  if (swapcontext(&self->context_, &self->return_context_) != 0) {
    throw std::runtime_error("Fiber: swapcontext failed");
  }
  // Resumed again: restore the current pointer (resume() sets it before
  // switching, but suspend's counterpart path runs through here).
  asan_finish_switch(self->asan_fiber_fake_, &self->asan_resumer_bottom_,
                     &self->asan_resumer_size_);
  g_current_fiber = self;
}

void Fiber::rethrow_if_failed() {
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace balbench::simt
