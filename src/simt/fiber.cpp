#include "simt/fiber.hpp"

#include <cassert>
#include <cstdint>
#include <stdexcept>

namespace balbench::simt {

namespace {
thread_local Fiber* g_current_fiber = nullptr;
}

Fiber* Fiber::current() { return g_current_fiber; }

Fiber::Fiber(Fn fn, std::size_t stack_size)
    : fn_(std::move(fn)), stack_(new char[stack_size]) {
  if (getcontext(&context_) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_size;
  context_.uc_link = nullptr;  // we always switch back explicitly
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned int>(self >> 32),
              static_cast<unsigned int>(self & 0xFFFFFFFFu));
}

void Fiber::trampoline(unsigned int hi, unsigned int lo) {
  const auto self = (static_cast<std::uintptr_t>(hi) << 32) |
                    static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self)->run();
}

void Fiber::run() {
  try {
    fn_();
  } catch (...) {
    error_ = std::current_exception();
  }
  finished_ = true;
  // Return control to the resumer; this fiber must never be resumed
  // again (resume() asserts on finished_).
  Fiber* self = g_current_fiber;
  g_current_fiber = nullptr;
  swapcontext(&self->context_, &self->return_context_);
  // Unreachable.
  assert(false && "finished fiber was resumed");
}

void Fiber::resume() {
  assert(g_current_fiber == nullptr && "nested fiber resume not supported");
  assert(!finished_ && "resume of finished fiber");
  started_ = true;
  g_current_fiber = this;
  if (swapcontext(&return_context_, &context_) != 0) {
    g_current_fiber = nullptr;
    throw std::runtime_error("Fiber: swapcontext failed");
  }
  g_current_fiber = nullptr;
}

void Fiber::suspend() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr && "Fiber::suspend outside of a fiber");
  g_current_fiber = nullptr;
  if (swapcontext(&self->context_, &self->return_context_) != 0) {
    throw std::runtime_error("Fiber: swapcontext failed");
  }
  // Resumed again: restore the current pointer (resume() sets it before
  // switching, but suspend's counterpart path runs through here).
  g_current_fiber = self;
}

void Fiber::rethrow_if_failed() {
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace balbench::simt
