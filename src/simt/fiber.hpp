// Cooperative fibers on top of POSIX ucontext.
//
// The simulation transport runs every simulated MPI rank as a fiber:
// rank code is written as ordinary blocking SPMD code, and a blocking
// operation suspends the fiber until the discrete-event engine delivers
// its completion at the right point in *virtual* time.  Cooperative
// (single-kernel-thread) scheduling keeps runs fully deterministic and
// makes a context switch cost ~100 ns, which matters when simulating
// hundreds of ranks on one host core.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>

#include "simt/stack_pool.hpp"

namespace balbench::simt {

class Fiber {
 public:
  using Fn = std::function<void()>;

  /// The fiber does not start running until the first resume().  The
  /// stack comes from StackPool (guard-paged, recycled); `stack_size`
  /// 0 means StackPool::default_stack_size(), which honours the
  /// BALBENCH_FIBER_STACK_KB knob.
  explicit Fiber(Fn fn, std::size_t stack_size = 0);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the scheduler into the fiber.  Returns when the fiber
  /// suspends or finishes.  Must not be called from inside a fiber.
  void resume();

  /// Suspend the *currently running* fiber back to its resumer.
  /// Must be called from inside the fiber.
  static void suspend();

  /// True once fn has returned (or thrown).
  [[nodiscard]] bool finished() const { return finished_; }

  /// If the fiber terminated with an exception, rethrows it.
  void rethrow_if_failed();

  /// The fiber currently executing, or nullptr when on the scheduler
  /// stack.
  static Fiber* current();

  static constexpr std::size_t kDefaultStackSize = StackPool::kDefaultStackSize;

 private:
  static void trampoline(unsigned int hi, unsigned int lo);
  void run();

  Fn fn_;
  StackPool::Stack stack_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr error_;
  // AddressSanitizer fiber-switch bookkeeping (see fiber.cpp); unused
  // -- and zero-cost -- in non-ASan builds.
  void* asan_fiber_fake_ = nullptr;    // fiber's fake stack while suspended
  void* asan_resumer_fake_ = nullptr;  // resumer's fake stack while inside
  const void* asan_resumer_bottom_ = nullptr;
  std::size_t asan_resumer_size_ = 0;
};

}  // namespace balbench::simt
