#include "simt/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace balbench::simt {

void Tracer::record(double start, double end, int process, char category,
                    std::string label) {
  if (end < start) return;
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  spans_.push_back(TraceSpan{start, end, process, category, std::move(label)});
}

void Tracer::begin_session(std::string label) {
  sessions_.push_back(TraceSession{spans_.size(), std::move(label)});
}

void Tracer::clear() {
  spans_.clear();
  sessions_.clear();
  dropped_ = 0;
}

void Tracer::describe(char category, std::string meaning) {
  legend_[category] = std::move(meaning);
}

std::map<char, double> Tracer::category_totals() const {
  std::map<char, double> totals;
  for (const auto& s : spans_) totals[s.category] += s.end - s.start;
  return totals;
}

void Tracer::render_timeline(std::ostream& os, int width, int max_rows) const {
  if (spans_.empty()) {
    os << "(empty trace)\n";
    return;
  }
  double t0 = spans_.front().start;
  double t1 = spans_.front().end;
  int max_proc = 0;
  for (const auto& s : spans_) {
    t0 = std::min(t0, s.start);
    t1 = std::max(t1, s.end);
    max_proc = std::max(max_proc, s.process);
  }
  if (t1 <= t0) t1 = t0 + 1e-9;
  const int rows = std::min(max_proc + 1, max_rows);
  const double bucket = (t1 - t0) / width;

  // Dominant category per (row, bucket): accumulate time per category.
  std::vector<std::vector<std::map<char, double>>> cells(
      static_cast<std::size_t>(rows),
      std::vector<std::map<char, double>>(static_cast<std::size_t>(width)));
  for (const auto& s : spans_) {
    if (s.process >= rows) continue;
    const int b0 = std::clamp(
        static_cast<int>((s.start - t0) / bucket), 0, width - 1);
    const int b1 = std::clamp(static_cast<int>((s.end - t0) / bucket), 0,
                              width - 1);
    for (int b = b0; b <= b1; ++b) {
      const double lo = t0 + b * bucket;
      const double hi = lo + bucket;
      const double overlap = std::min(hi, s.end) - std::max(lo, s.start);
      if (overlap > 0.0) {
        cells[static_cast<std::size_t>(s.process)][static_cast<std::size_t>(b)]
             [s.category] += overlap;
      }
    }
  }

  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g", t1 - t0);
  os << "virtual-time trace, " << spans_.size() << " spans over " << buf
     << " s" << (dropped_ > 0 ? " (some spans dropped)" : "") << '\n';
  for (int r = 0; r < rows; ++r) {
    std::snprintf(buf, sizeof buf, "p%-3d |", r);
    os << buf;
    for (int b = 0; b < width; ++b) {
      const auto& cell = cells[static_cast<std::size_t>(r)][static_cast<std::size_t>(b)];
      char best = ' ';
      double best_t = 0.0;
      for (const auto& [cat, t] : cell) {
        if (t > best_t) {
          best_t = t;
          best = cat;
        }
      }
      os << best;
    }
    os << "|\n";
  }
  if (max_proc + 1 > rows) {
    os << "(+" << (max_proc + 1 - rows) << " more processes not shown)\n";
  }

  os << "totals:";
  for (const auto& [cat, t] : category_totals()) {
    std::snprintf(buf, sizeof buf, "%.4g", t);
    os << "  " << cat;
    auto it = legend_.find(cat);
    if (it != legend_.end()) os << '=' << it->second;
    os << ' ' << buf << 's';
  }
  os << '\n';
}

void Tracer::write_csv(std::ostream& os) const {
  os << "start,end,process,category,label\n";
  const auto saved = os.precision(12);
  for (const auto& s : spans_) {
    os << s.start << ',' << s.end << ',' << s.process << ',' << s.category
       << ',' << s.label << '\n';
  }
  os.precision(saved);
}

}  // namespace balbench::simt
