#include "simt/stack_pool.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <unordered_map>
#include <vector>

namespace balbench::simt {

namespace {

std::atomic<std::uint64_t> g_mapped{0};
std::atomic<std::uint64_t> g_slab_carved{0};
std::atomic<std::uint64_t> g_reused{0};
std::atomic<std::uint64_t> g_unmapped{0};
std::atomic<std::uint64_t> g_in_use{0};
std::atomic<std::uint64_t> g_in_use_high_water{0};
/// Guard-paged stacks currently mapped (kMaxGuardedStacks budget).
std::atomic<std::uint64_t> g_guarded_live{0};

std::size_t page_size() {
  static const std::size_t kPage =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return kPage;
}

void note_acquired() {
  const std::uint64_t now = g_in_use.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t hw = g_in_use_high_water.load(std::memory_order_relaxed);
  while (now > hw && !g_in_use_high_water.compare_exchange_weak(
                         hw, now, std::memory_order_relaxed)) {
  }
}

void unmap_guarded(const StackPool::Stack& s) {
  ::munmap(s.map, s.map_size);
  g_unmapped.fetch_add(1, std::memory_order_relaxed);
  g_guarded_live.fetch_sub(1, std::memory_order_relaxed);
}

// Per-thread state.  The destructor returns everything to the OS at
// thread exit, so worker threads of a sweep do not leak their warm
// cache; slab-carved free-list entries point into `slabs` and are
// simply dropped.
struct ThreadCache {
  std::unordered_map<std::size_t, std::vector<StackPool::Stack>> by_size;
  struct Slab {
    void* map = nullptr;
    std::size_t map_size = 0;
  };
  std::vector<Slab> slabs;
  char* slab_cur = nullptr;  // bump pointer into the newest slab
  char* slab_end = nullptr;
  ~ThreadCache() {
    for (auto& [size, list] : by_size) {
      (void)size;
      for (const auto& s : list) {
        if (s.guarded()) unmap_guarded(s);
      }
    }
    for (const auto& slab : slabs) ::munmap(slab.map, slab.map_size);
  }
};

ThreadCache& cache() {
  thread_local ThreadCache tc;
  return tc;
}

/// Usable bytes per slab; one slab serves many stacks, keeping the
/// per-process mapping count flat for 100k-rank sessions.
constexpr std::size_t kSlabBytes = 8u << 20;

}  // namespace

std::size_t StackPool::default_stack_size() {
  static const std::size_t kSize = [] {
    std::size_t bytes = kDefaultStackSize;
    if (const char* env = std::getenv("BALBENCH_FIBER_STACK_KB")) {
      char* end = nullptr;
      const unsigned long long kib = std::strtoull(env, &end, 10);
      if (end != env && kib > 0) bytes = static_cast<std::size_t>(kib) * 1024;
    }
    const std::size_t page = page_size();
    if (bytes < page) bytes = page;
    return (bytes + page - 1) / page * page;
  }();
  return kSize;
}

StackPool::Stack StackPool::acquire(std::size_t stack_size) {
  if (stack_size == 0) stack_size = default_stack_size();
  const std::size_t page = page_size();
  const std::size_t usable =
      ((stack_size < page ? page : stack_size) + page - 1) / page * page;

  ThreadCache& tc = cache();
  if (auto it = tc.by_size.find(usable);
      it != tc.by_size.end() && !it->second.empty()) {
    Stack s = it->second.back();
    it->second.pop_back();
    g_reused.fetch_add(1, std::memory_order_relaxed);
    note_acquired();
    return s;
  }

  // Fresh guard-paged mapping, while the VMA budget lasts.  The
  // increment-then-check keeps the budget safe under concurrent
  // workers (a transient overshoot by #threads is harmless).
  if (g_guarded_live.fetch_add(1, std::memory_order_relaxed) <
      kMaxGuardedStacks) {
    const std::size_t map_size = usable + page;  // + low guard page
    void* map = ::mmap(nullptr, map_size, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (map != MAP_FAILED) {
      // Stacks grow downward: the guard sits below the usable region
      // so an overflow hits PROT_NONE instead of neighbouring memory.
      if (::mprotect(map, page, PROT_NONE) != 0) {
        ::munmap(map, map_size);
        g_guarded_live.fetch_sub(1, std::memory_order_relaxed);
        throw std::bad_alloc();
      }
      Stack s;
      s.map = map;
      s.map_size = map_size;
      s.base = static_cast<char*>(map) + page;
      s.size = usable;
      g_mapped.fetch_add(1, std::memory_order_relaxed);
      note_acquired();
      return s;
    }
    // mmap failure (e.g. map count exhausted early): fall through to
    // the slab path rather than failing the session.
  }
  g_guarded_live.fetch_sub(1, std::memory_order_relaxed);

  // Slab path: bump-allocate an unguarded stack.
  if (tc.slab_cur == nullptr ||
      static_cast<std::size_t>(tc.slab_end - tc.slab_cur) < usable) {
    const std::size_t slab_size = usable > kSlabBytes ? usable : kSlabBytes;
    void* map = ::mmap(nullptr, slab_size, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (map == MAP_FAILED) throw std::bad_alloc();
    tc.slabs.push_back(ThreadCache::Slab{map, slab_size});
    tc.slab_cur = static_cast<char*>(map);
    tc.slab_end = tc.slab_cur + slab_size;
  }
  Stack s;
  s.base = tc.slab_cur;
  s.size = usable;
  tc.slab_cur += usable;
  g_slab_carved.fetch_add(1, std::memory_order_relaxed);
  note_acquired();
  return s;
}

void StackPool::release(Stack s) {
  if (!s) return;
  g_in_use.fetch_sub(1, std::memory_order_relaxed);
  auto& list = cache().by_size[s.size];
  if (!s.guarded() || list.size() < kMaxCachedPerClass) {
    list.push_back(s);
    return;
  }
  unmap_guarded(s);
}

void StackPool::trim() {
  ThreadCache& tc = cache();
  for (auto& [size, list] : tc.by_size) {
    (void)size;
    // Guarded stacks go back to the OS; slab-carved ones have nowhere
    // to go until the whole slab dies with the thread, so keep them.
    std::size_t kept = 0;
    for (auto& s : list) {
      if (s.guarded()) {
        unmap_guarded(s);
      } else {
        list[kept++] = s;
      }
    }
    list.resize(kept);
  }
}

StackPool::Stats StackPool::stats() {
  Stats st;
  st.mapped = g_mapped.load(std::memory_order_relaxed);
  st.slab_carved = g_slab_carved.load(std::memory_order_relaxed);
  st.reused = g_reused.load(std::memory_order_relaxed);
  st.unmapped = g_unmapped.load(std::memory_order_relaxed);
  st.in_use = g_in_use.load(std::memory_order_relaxed);
  st.in_use_high_water = g_in_use_high_water.load(std::memory_order_relaxed);
  return st;
}

}  // namespace balbench::simt
