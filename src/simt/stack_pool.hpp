// Pooled, guard-paged fiber stacks.
//
// Every simulated rank runs on a fiber, so a 100k-rank session needs
// 100k stacks.  Allocating each with operator new is slow (page faults
// on first touch, allocator metadata churn) and unsafe (an overflow
// silently tramples the neighbouring heap block).  The pool instead
// mmaps each stack with a PROT_NONE guard page at the low end -- the
// direction x86/ARM stacks grow -- so overflow faults immediately, and
// recycles released stacks through a per-thread free list so repeated
// sessions (a perf sweep, a scenario matrix) stop paying the mmap +
// fault-in cost after the first run.  See docs/SIMULATOR.md
// "Fiber stacks and pooling".
//
// Thread model: free lists are thread_local, so a stack is only ever
// reused by the thread that released it -- no locks on the hot path,
// and no cross-thread handoff for TSan to object to.  Statistics are
// process-global atomics (they aggregate all worker threads).
//
// VMA budget: every guard page splits the address space into two
// kernel VMAs, and vm.max_map_count is commonly ~65k -- far below the
// two-per-stack a 100k-rank session would need.  The pool therefore
// guards the first kMaxGuardedStacks stacks individually and carves
// any further stacks out of large unguarded slabs (bump-allocated,
// recycled through the same free lists, returned to the OS wholesale
// at thread exit).  An overflow on a slab stack tramples its
// neighbour's deepest frames instead of faulting -- the accepted cost
// of scaling past the kernel's mapping limit; sessions small enough
// to matter for debugging stay fully guarded.
//
// Determinism: nothing here may leak into run records.  Whether an
// acquire is a fresh map or a reuse depends on which cells the worker
// thread ran before, i.e. on host scheduling -- so Stats are exposed
// for logs and tests only.  Deterministic capacity metrics (rank
// high-water x stack size) come from the engine instead
// (Engine::live_process_high_water).
#pragma once

#include <cstddef>
#include <cstdint>

namespace balbench::simt {

class StackPool {
 public:
  /// One stack.  `base`/`size` describe the usable region (what goes
  /// into ucontext's ss_sp/ss_size and the ASan fiber annotations).
  /// Guarded stacks own their mapping (`map`/`map_size`, starting one
  /// page below `base`); slab-carved stacks have map == nullptr and
  /// live inside a thread-owned slab.
  struct Stack {
    char* base = nullptr;
    std::size_t size = 0;
    void* map = nullptr;
    std::size_t map_size = 0;
    [[nodiscard]] explicit operator bool() const { return base != nullptr; }
    [[nodiscard]] bool guarded() const { return map != nullptr; }
  };

  /// Process-global, host-side counters (see file comment: never part
  /// of run records).
  struct Stats {
    std::uint64_t mapped = 0;       ///< guard-paged stacks freshly mmap'd
    std::uint64_t slab_carved = 0;  ///< stacks carved from unguarded slabs
    std::uint64_t reused = 0;       ///< acquires served from a free list
    std::uint64_t unmapped = 0;     ///< guarded stacks returned to the OS
    std::uint64_t in_use = 0;       ///< currently acquired
    std::uint64_t in_use_high_water = 0;  ///< max simultaneous in_use
  };

  /// Acquire a stack with at least `stack_size` usable bytes (rounded
  /// up to a whole number of pages).  Throws std::bad_alloc on mmap
  /// failure.  Pass 0 for default_stack_size().
  static Stack acquire(std::size_t stack_size);

  /// Return a stack to the calling thread's free list (or to the OS
  /// once the list holds kMaxCachedPerClass entries of this size).
  /// No-op for a default-constructed Stack.
  static void release(Stack s);

  /// Unmap every stack cached by the *calling* thread.
  static void trim();

  [[nodiscard]] static Stats stats();

  /// Usable bytes given to fibers that do not ask for a specific size:
  /// kDefaultStackSize, overridable via BALBENCH_FIBER_STACK_KB
  /// (clamped to >= 1 page; read once per process).
  [[nodiscard]] static std::size_t default_stack_size();

  static constexpr std::size_t kDefaultStackSize = 256 * 1024;

  /// Per-thread cap on cached *guarded* stacks of one size class;
  /// beyond it, released guarded stacks go straight back to the OS.
  /// 1024 x 256 KiB = 256 MiB worst-case idle cache per worker
  /// thread.  Slab-carved stacks always return to the free list (their
  /// memory cannot be released piecemeal anyway).
  static constexpr std::size_t kMaxCachedPerClass = 1024;

  /// Process-wide cap on simultaneously-mapped guard-paged stacks
  /// (two VMAs each); acquires beyond it carve from slabs instead.
  static constexpr std::size_t kMaxGuardedStacks = 16384;
};

}  // namespace balbench::simt
