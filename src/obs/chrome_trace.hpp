// Chrome trace_event exporter (DESIGN.md Sec. 10.3).
//
// Converts simt::Tracer spans plus obs::Registry metric samples into
// the Chrome trace_event JSON object format, loadable in
// chrome://tracing and https://ui.perfetto.dev:
//
//   * every tracer session becomes one trace "process" (pid), named by
//     the session label (a b_eff measurement cell, a b_eff_io chain);
//   * every simulated rank becomes a "thread" (tid) within its pid;
//   * every span becomes a complete event (ph "X") whose category is
//     the tracer legend entry ("compute", "collective", "msg-wait",
//     "io-write", "io-read");
//   * every registry sample becomes a counter event (ph "C") attached
//     to the session that was active when it was recorded.
//
// Times: the simulator's virtual seconds are written as trace
// microseconds (ts/dur fields), so one trace second on screen is one
// simulated second -- wall-clock never appears.  The export is
// deterministic: same simulation, byte-identical trace.
#pragma once

#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "simt/trace.hpp"

namespace balbench::obs {

struct ChromeTraceOptions {
  /// Label for spans recorded before the first begin_session() (or for
  /// tracers that never started one).
  std::string default_session = "run";
  /// Emit at most this many span events (0 = unlimited); the drop
  /// count is reported in the trace's otherData block.  Metric samples
  /// are never dropped by the exporter.
  std::size_t max_events = 0;
};

/// Writes the trace_event JSON for `tracer` (and, when non-null, the
/// counter samples of `registry`) to `os`.  Returns the number of span
/// events written.
std::size_t write_chrome_trace(std::ostream& os, const simt::Tracer& tracer,
                               const Registry* registry = nullptr,
                               const ChromeTraceOptions& options = {});

}  // namespace balbench::obs
