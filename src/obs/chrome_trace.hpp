// Chrome trace_event exporter (DESIGN.md Sec. 10.3).
//
// Converts simt::Tracer spans plus obs::Registry metric samples into
// the Chrome trace_event JSON object format, loadable in
// chrome://tracing and https://ui.perfetto.dev:
//
//   * every tracer session becomes one trace "process" (pid), named by
//     the session label (a b_eff measurement cell, a b_eff_io chain);
//   * every simulated rank becomes a "thread" (tid) within its pid;
//   * every span becomes a complete event (ph "X") whose category is
//     the tracer legend entry ("compute", "collective", "msg-wait",
//     "io-write", "io-read");
//   * every registry sample becomes a counter event (ph "C") attached
//     to the session that was active when it was recorded.
//
// Times: the simulator's virtual seconds are written as trace
// microseconds (ts/dur fields), so one trace second on screen is one
// simulated second -- wall-clock never appears.  The export is
// deterministic: same simulation, byte-identical trace.
// A wall-clock profiler (obs/prof.hpp) can ride along on a dedicated
// "wall-clock (host)" process (pid 1000000, far above any session
// pid), so the host cost of the harness is viewable side by side with
// the virtual timeline in one Perfetto window.  Wall spans use host
// microseconds on the same ts axis; they are observe-only and make the
// trace non-reproducible, which is why they only appear when a
// profiler is passed in explicitly.
#pragma once

#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "simt/trace.hpp"

namespace balbench::obs {

namespace prof {
class Profiler;
}  // namespace prof

struct ChromeTraceOptions {
  /// Label for spans recorded before the first begin_session() (or for
  /// tracers that never started one).
  std::string default_session = "run";
  /// Emit at most this many span events (0 = unlimited); the drop
  /// count is reported in the trace's otherData block.  Metric samples
  /// are never dropped by the exporter.
  std::size_t max_events = 0;
  /// When set, this profiler's wall-clock spans are appended on the
  /// separate "wall" pid (see the header comment).  The trace is then
  /// no longer byte-reproducible across runs.
  const prof::Profiler* wall_profiler = nullptr;
};

/// pid of the wall-clock timeline when ChromeTraceOptions::
/// wall_profiler is set; sessions use pids 1..N, so the gap keeps the
/// two namespaces visibly apart in trace viewers.
inline constexpr std::int64_t kWallTracePid = 1000000;

/// Writes the trace_event JSON for `tracer` (and, when non-null, the
/// counter samples of `registry`) to `os`.  Returns the number of span
/// events written.
std::size_t write_chrome_trace(std::ostream& os, const simt::Tracer& tracer,
                               const Registry* registry = nullptr,
                               const ChromeTraceOptions& options = {});

}  // namespace balbench::obs
