#include "obs/chrome_trace.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "obs/prof.hpp"

namespace balbench::obs {

namespace {

/// Trace-event names must be useful at span granularity: prefer the
/// explicit label, fall back to the legend meaning, then to the raw
/// category char.
std::string span_name(const simt::TraceSpan& s,
                      const std::map<char, std::string>& legend) {
  if (!s.label.empty()) return s.label;
  auto it = legend.find(s.category);
  if (it != legend.end()) return it->second;
  return std::string(1, s.category);
}

}  // namespace

std::size_t write_chrome_trace(std::ostream& os, const simt::Tracer& tracer,
                               const Registry* registry,
                               const ChromeTraceOptions& options) {
  const auto& spans = tracer.spans();
  const auto& legend = tracer.legend();

  // Effective session table: pid i+1 covers spans [first_span of i,
  // first_span of i+1).  A tracer without sessions gets one implicit
  // session covering everything.
  std::vector<simt::TraceSession> sessions(tracer.sessions());
  if (sessions.empty()) {
    sessions.push_back(simt::TraceSession{0, options.default_session});
  } else if (sessions.front().first_span > 0) {
    // Spans recorded before the first begin_session() keep pid 1.
    sessions.insert(sessions.begin(),
                    simt::TraceSession{0, options.default_session});
  }

  JsonWriter w(os, 1);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  // Process-name metadata, one per session.
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    w.begin_object();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", static_cast<std::int64_t>(i + 1));
    w.key("args").begin_object();
    w.field("name", sessions[i].label);
    w.end_object();
    w.end_object();
  }

  std::size_t written = 0;
  std::size_t dropped = 0;
  std::size_t session_idx = 0;
  for (std::size_t si = 0; si < spans.size(); ++si) {
    while (session_idx + 1 < sessions.size() &&
           si >= sessions[session_idx + 1].first_span) {
      ++session_idx;
    }
    if (options.max_events > 0 && written >= options.max_events) {
      ++dropped;
      continue;
    }
    const simt::TraceSpan& s = spans[si];
    w.begin_object();
    w.field("name", span_name(s, legend));
    auto it = legend.find(s.category);
    w.field("cat", it != legend.end() ? it->second : std::string(1, s.category));
    w.field("ph", "X");
    w.field("ts", s.start * 1e6);           // virtual seconds -> trace us
    w.field("dur", (s.end - s.start) * 1e6);
    w.field("pid", static_cast<std::int64_t>(session_idx + 1));
    w.field("tid", static_cast<std::int64_t>(s.process));
    w.end_object();
    ++written;
  }

  std::size_t dropped_samples = 0;
  if (registry != nullptr) {
    // Registry sections are begun at the same points as tracer
    // sessions (the transport starts both per run), so section k maps
    // to pid k; samples recorded before any section join pid 1.
    for (const MetricSample& m : registry->samples()) {
      const auto pid = static_cast<std::int64_t>(std::clamp<std::size_t>(
          static_cast<std::size_t>(m.section), 1, sessions.size()));
      w.begin_object();
      w.field("name", m.name);
      w.field("ph", "C");
      w.field("ts", m.time * 1e6);
      w.field("pid", pid);
      w.key("args").begin_object();
      w.field("value", m.value);
      w.end_object();
      w.end_object();
    }
    dropped_samples = registry->dropped_samples();
  }

  std::size_t wall_spans = 0;
  if (options.wall_profiler != nullptr) {
    w.begin_object();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", kWallTracePid);
    w.key("args").begin_object();
    w.field("name", "wall-clock (host)");
    w.end_object();
    w.end_object();
    for (const auto& s : options.wall_profiler->spans()) {
      w.begin_object();
      w.field("name", s.label.empty() ? std::string(s.category) : s.label);
      w.field("cat", s.category);
      w.field("ph", "X");
      w.field("ts", s.start * 1e6);  // host seconds -> trace us
      w.field("dur", s.dur * 1e6);
      w.field("pid", kWallTracePid);
      w.field("tid", static_cast<std::int64_t>(s.thread));
      w.end_object();
      ++wall_spans;
    }
  }
  w.end_array();

  w.key("otherData").begin_object();
  w.field("clock", "virtual (1 trace us = 1 simulated us)");
  if (options.wall_profiler != nullptr) {
    w.field("wall_clock",
            "pid 1000000 spans are host steady_clock us (observe-only)");
    w.field("wall_spans", static_cast<std::uint64_t>(wall_spans));
  }
  w.field("spans_dropped_by_tracer",
          static_cast<std::uint64_t>(tracer.dropped()));
  w.field("spans_dropped_by_exporter", static_cast<std::uint64_t>(dropped));
  w.field("samples_dropped_by_registry",
          static_cast<std::uint64_t>(dropped_samples));
  w.end_object();
  w.end_object();
  os << '\n';
  return written;
}

}  // namespace balbench::obs
