#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace balbench::obs {

int Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN -> underflow bucket
  if (v < kMinValue) return 1;
  // frexp gives v = m * 2^e with m in [0.5, 1): the exponent alone
  // determines the power-of-two bucket, no log() rounding issues.
  int e_v = 0;
  int e_min = 0;
  std::frexp(v, &e_v);
  std::frexp(kMinValue, &e_min);
  const int idx = 1 + (e_v - e_min);
  return std::min(idx, kNumBuckets - 1);
}

double Histogram::bucket_lower_bound(int i) {
  if (i <= 0) return 0.0;
  if (i == 1) return kMinValue;
  // Reconstruct the power-of-two boundary that bucket_index assigns:
  // bucket i >= 2 starts where the exponent exceeds kMinValue's by i-1.
  int e_min = 0;
  std::frexp(kMinValue, &e_min);
  return std::ldexp(0.5, e_min + i - 1);
}

void Histogram::observe(double v) {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (v > 0.0) sum_.fetch_add(v, std::memory_order_relaxed);
  double cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Registry::Slot& Registry::slot(const std::string& name, Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = names_.find(name);
  if (it == names_.end()) {
    Slot s;
    s.kind = kind;
    switch (kind) {
      case Kind::Counter: s.counter = std::make_unique<Counter>(); break;
      case Kind::Sum: s.sum = std::make_unique<Sum>(); break;
      case Kind::Gauge: s.gauge = std::make_unique<Gauge>(); break;
      case Kind::Histogram: s.histogram = std::make_unique<Histogram>(); break;
    }
    it = names_.emplace(name, std::move(s)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("obs::Registry: metric '" + name +
                           "' already registered with a different type");
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name) {
  return *slot(name, Kind::Counter).counter;
}
Sum& Registry::sum(const std::string& name) {
  return *slot(name, Kind::Sum).sum;
}
Gauge& Registry::gauge(const std::string& name) {
  return *slot(name, Kind::Gauge).gauge;
}
Histogram& Registry::histogram(const std::string& name) {
  return *slot(name, Kind::Histogram).histogram;
}

void Registry::sample(const std::string& name, double time, double value) {
  if (!sampling()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.size() >= max_samples_) {
    dropped_samples_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  samples_.push_back(MetricSample{section_.load(std::memory_order_relaxed),
                                  time, value, name});
}

void Registry::begin_section() {
  section_.fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, s] : names_) {
    switch (s.kind) {
      case Kind::Counter:
        out.counters[name] = s.counter->value();
        break;
      case Kind::Sum:
        out.sums[name] = s.sum->value();
        break;
      case Kind::Gauge:
        out.gauges[name] = s.gauge->value();
        break;
      case Kind::Histogram: {
        HistogramData h;
        h.count = s.histogram->count();
        h.sum = s.histogram->sum();
        h.max = s.histogram->max();
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          const std::uint64_t c = s.histogram->bucket(i);
          if (c > 0) h.buckets.emplace_back(i, c);
        }
        out.histograms[name] = std::move(h);
        break;
      }
    }
  }
  return out;
}

std::vector<MetricSample> Registry::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [k, v] : other.counters) counters[k] += v;
  for (const auto& [k, v] : other.sums) sums[k] += v;
  for (const auto& [k, v] : other.gauges) {
    auto [it, inserted] = gauges.emplace(k, v);
    if (!inserted) it->second = std::max(it->second, v);
  }
  for (const auto& [k, v] : other.histograms) {
    HistogramData& h = histograms[k];
    h.count += v.count;
    h.sum += v.sum;
    h.max = std::max(h.max, v.max);
    // Merge the sparse bucket lists (both are ascending in index).
    std::vector<std::pair<int, std::uint64_t>> merged;
    merged.reserve(h.buckets.size() + v.buckets.size());
    auto a = h.buckets.begin();
    auto b = v.buckets.begin();
    while (a != h.buckets.end() || b != v.buckets.end()) {
      if (b == v.buckets.end() ||
          (a != h.buckets.end() && a->first < b->first)) {
        merged.push_back(*a++);
      } else if (a == h.buckets.end() || b->first < a->first) {
        merged.push_back(*b++);
      } else {
        merged.emplace_back(a->first, a->second + b->second);
        ++a;
        ++b;
      }
    }
    h.buckets = std::move(merged);
  }
}

}  // namespace balbench::obs
