#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace balbench::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\f': out += "\\f"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "null";
  std::string s(buf, ptr);
  // A bare integer like "3" is valid JSON but loses the "this was a
  // double" signal for readers; normalize exponent-free integral forms
  // to "3.0" so records parse back into doubles unambiguously.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos) {
    s += ".0";
  }
  return s;
}

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {
  stack_.push_back({Ctx::Top});
}

JsonWriter::~JsonWriter() {
  // Unbalanced writers are a programming error, but destructors must
  // not throw; the written stream is simply left truncated.
}

void JsonWriter::newline() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 1; i < stack_.size(); ++i) {
    for (int j = 0; j < indent_; ++j) os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  Level& top = stack_.back();
  switch (top.ctx) {
    case Ctx::Top:
      break;
    case Ctx::Object:
      if (!top.key_pending) {
        throw std::logic_error("JsonWriter: value without key in object");
      }
      top.key_pending = false;
      return;  // key() already handled separators
    case Ctx::Array:
      if (top.has_items) os_ << ',';
      newline();
      break;
  }
  top.has_items = true;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  Level& top = stack_.back();
  if (top.ctx != Ctx::Object) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (top.key_pending) throw std::logic_error("JsonWriter: key after key");
  if (top.has_items) os_ << ',';
  newline();
  os_ << '"' << json_escape(k) << "\":";
  if (indent_ > 0) os_ << ' ';
  top.has_items = true;
  top.key_pending = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back({Ctx::Object});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  Level& top = stack_.back();
  if (top.ctx != Ctx::Object || top.key_pending) {
    throw std::logic_error("JsonWriter: unbalanced end_object");
  }
  const bool had_items = top.has_items;
  stack_.pop_back();
  if (had_items) newline();
  os_ << '}';
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back({Ctx::Array});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  Level& top = stack_.back();
  if (top.ctx != Ctx::Array) {
    throw std::logic_error("JsonWriter: unbalanced end_array");
  }
  const bool had_items = top.has_items;
  stack_.pop_back();
  if (had_items) newline();
  os_ << ']';
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  os_ << json_double(v);
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  if (stack_.size() == 1) done_ = true;
  return *this;
}

}  // namespace balbench::obs
