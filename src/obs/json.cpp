#include "obs/json.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace balbench::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\f': out += "\\f"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "null";
  std::string s(buf, ptr);
  // A bare integer like "3" is valid JSON but loses the "this was a
  // double" signal for readers; normalize exponent-free integral forms
  // to "3.0" so records parse back into doubles unambiguously.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos) {
    s += ".0";
  }
  return s;
}

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {
  stack_.push_back({Ctx::Top});
}

JsonWriter::~JsonWriter() {
  // Unbalanced writers are a programming error, but destructors must
  // not throw; the written stream is simply left truncated.
}

void JsonWriter::newline() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 1; i < stack_.size(); ++i) {
    for (int j = 0; j < indent_; ++j) os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  Level& top = stack_.back();
  switch (top.ctx) {
    case Ctx::Top:
      break;
    case Ctx::Object:
      if (!top.key_pending) {
        throw std::logic_error("JsonWriter: value without key in object");
      }
      top.key_pending = false;
      return;  // key() already handled separators
    case Ctx::Array:
      if (top.has_items) os_ << ',';
      newline();
      break;
  }
  top.has_items = true;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  Level& top = stack_.back();
  if (top.ctx != Ctx::Object) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (top.key_pending) throw std::logic_error("JsonWriter: key after key");
  if (top.has_items) os_ << ',';
  newline();
  os_ << '"' << json_escape(k) << "\":";
  if (indent_ > 0) os_ << ' ';
  top.has_items = true;
  top.key_pending = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back({Ctx::Object});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  Level& top = stack_.back();
  if (top.ctx != Ctx::Object || top.key_pending) {
    throw std::logic_error("JsonWriter: unbalanced end_object");
  }
  const bool had_items = top.has_items;
  stack_.pop_back();
  if (had_items) newline();
  os_ << '}';
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back({Ctx::Array});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  Level& top = stack_.back();
  if (top.ctx != Ctx::Array) {
    throw std::logic_error("JsonWriter: unbalanced end_array");
  }
  const bool had_items = top.has_items;
  stack_.pop_back();
  if (had_items) newline();
  os_ << ']';
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  os_ << json_double(v);
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (stack_.size() == 1) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  if (stack_.size() == 1) done_ = true;
  return *this;
}

// ---------------------------------------------------------------------------
// JsonValue / parse_json
// ---------------------------------------------------------------------------

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) throw std::runtime_error("JSON: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::Number) throw std::runtime_error("JSON: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) throw std::runtime_error("JSON: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::Array) throw std::runtime_error("JSON: not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::Object) throw std::runtime_error("JSON: not an object");
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw std::runtime_error("JSON: missing key \"" + key + '"');
  return *v;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::Bool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.kind_ = Kind::Number;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::String;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> v) {
  JsonValue j;
  j.kind_ = Kind::Array;
  j.array_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> v) {
  JsonValue j;
  j.kind_ = Kind::Object;
  j.object_ = std::move(v);
  return j;
}

namespace {

/// Recursive-descent RFC 8259 parser over a string_view cursor.
/// Nesting depth is capped at kMaxDepth: the parser recurses once per
/// container level, so a hostile or corrupt input of the form
/// "[[[[..." would otherwise overflow the stack instead of reporting
/// a parse error.
class Parser {
 public:
  static constexpr int kMaxDepth = 256;

  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  /// Errors carry a 1-based line/column (computed from the cursor) and
  /// the JSON-Pointer-like key path of the innermost value being
  /// parsed ("$" is the document root), so a human editing a config
  /// file can find the offending spot without counting bytes.
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t column = 1;
    const std::size_t end = std::min(pos_, text_.size());
    for (std::size_t i = 0; i < end; ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::string where = "$";
    for (const std::string& seg : path_) where += seg;
    throw std::runtime_error("JSON parse error at line " +
                             std::to_string(line) + ", column " +
                             std::to_string(column) + " (at " + where +
                             "): " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + '\'');
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  void enter_container() {
    if (++depth_ > kMaxDepth) {
      fail("nesting depth exceeds " + std::to_string(kMaxDepth));
    }
  }

  JsonValue parse_object() {
    enter_container();
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      path_.push_back("." + key);
      expect(':');
      members[std::move(key)] = parse_value();
      path_.pop_back();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array() {
    enter_container();
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      path_.push_back("[" + std::to_string(items.size()) + "]");
      items.push_back(parse_value());
      path_.pop_back();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 't': out += '\t'; break;
        case 'n': out += '\n'; break;
        case 'f': out += '\f'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) fail("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (the writer only ever
          // emits \u00XX control escapes; surrogates pass through as
          // replacement-free raw encodings of their halves).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) {
      pos_ = start;
      fail("bad number");
    }
    return JsonValue::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::vector<std::string> path_;  // ".key" / "[index]" segments
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace balbench::obs
