#include "obs/prof.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "obs/json.hpp"
#include "util/wallclock.hpp"

namespace balbench::obs::prof {

namespace {

std::atomic<Profiler*> g_profiler{nullptr};
std::atomic<std::uint64_t> g_next_id{1};

constexpr const char* kTaskCategory = "task";

}  // namespace

void attach(Profiler* p) {
  g_profiler.store(p, std::memory_order_release);
  util::set_pool_observer(p);
}

Profiler* current() { return g_profiler.load(std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

struct Profiler::ThreadLog {
  struct Entry {
    std::string label;
    const char* category;
    double start;
    double end;
    std::uint64_t batch;  // 0 for scope spans
    bool stolen;
  };

  explicit ThreadLog(std::size_t capacity) : entries(capacity) {}

  /// Single-writer bounded log: slots are written once, then published
  /// with a release store of `count`, so a concurrent reader that
  /// loads `count` with acquire sees fully written entries only.
  void push(Entry e) {
    const std::size_t n = count.load(std::memory_order_relaxed);
    if (n >= entries.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    entries[n] = std::move(e);
    count.store(n + 1, std::memory_order_release);
  }

  std::vector<Entry> entries;
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint32_t thread_index = 0;
};

Profiler::Profiler(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      id_(g_next_id.fetch_add(1, std::memory_order_relaxed)) {}

Profiler::~Profiler() = default;

Profiler::ThreadLog* Profiler::log_for_this_thread() {
  // The cache is keyed by the profiler's process-unique id: a thread
  // that last recorded into another profiler re-registers here instead
  // of writing into the wrong (possibly destroyed) log.
  struct Cache {
    std::uint64_t profiler_id = 0;
    ThreadLog* log = nullptr;
  };
  thread_local Cache cache;
  if (cache.profiler_id != id_) {
    std::lock_guard<std::mutex> lock(mutex_);
    logs_.push_back(std::make_unique<ThreadLog>(capacity_));
    logs_.back()->thread_index = static_cast<std::uint32_t>(logs_.size() - 1);
    cache = {id_, logs_.back().get()};
  }
  return cache.log;
}

void Profiler::record(const char* category, std::string label,
                      double start_seconds, double end_seconds) {
  log_for_this_thread()->push(
      {std::move(label), category, start_seconds, end_seconds, 0, false});
}

void Profiler::on_batch_begin(std::uint64_t batch, std::size_t n, int workers,
                              double start_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  BatchTelemetry b;
  b.batch = batch;
  b.tasks = n;
  b.workers = workers;
  b.wall_seconds = -start_seconds;  // completed by on_batch_end
  batches_.push_back(b);
}

void Profiler::on_batch_end(std::uint64_t batch, double end_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = batches_.rbegin(); it != batches_.rend(); ++it) {
    if (it->batch == batch && it->wall_seconds <= 0.0) {
      it->wall_seconds += end_seconds;
      return;
    }
  }
}

void Profiler::on_task(std::uint64_t batch, std::size_t index, int worker,
                       bool stolen, double start_seconds, double end_seconds) {
  (void)worker;  // the log index already identifies the host thread
  log_for_this_thread()->push({"#" + std::to_string(index), kTaskCategory,
                               start_seconds, end_seconds, batch, stolen});
}

std::vector<Span> Profiler::spans() const {
  std::vector<Span> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& log : logs_) {
    const std::size_t n = log->count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& e = log->entries[i];
      out.push_back(
          {e.label, e.category, log->thread_index, e.start, e.end - e.start});
    }
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return std::tie(a.thread, a.start, a.dur, a.label) <
           std::tie(b.thread, b.start, b.dur, b.label);
  });
  return out;
}

SchedulerTelemetry Profiler::scheduler() const {
  SchedulerTelemetry t;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    t.batches = batches_;
    for (const auto& log : logs_) {
      const std::size_t n = log->count.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i) {
        const auto& e = log->entries[i];
        if (e.category != kTaskCategory) continue;
        const double dur = e.end - e.start;
        for (auto it = t.batches.rbegin(); it != t.batches.rend(); ++it) {
          if (it->batch != e.batch) continue;
          it->task_seconds += dur;
          it->max_task_seconds = std::max(it->max_task_seconds, dur);
          if (e.stolen) {
            ++it->stolen_tasks;
            it->stolen_seconds += dur;
          }
          break;
        }
      }
    }
  }
  // Drop batches whose end never arrived (still in flight at export).
  std::erase_if(t.batches,
                [](const BatchTelemetry& b) { return b.wall_seconds <= 0.0; });
  for (const auto& b : t.batches) {
    t.tasks += b.tasks;
    t.stolen_tasks += b.stolen_tasks;
    t.task_seconds += b.task_seconds;
    t.stolen_seconds += b.stolen_seconds;
    t.wall_seconds += b.wall_seconds;
    t.critical_path_seconds += b.max_task_seconds;
    t.idle_seconds +=
        std::max(0.0, b.workers * b.wall_seconds - b.task_seconds);
  }
  return t;
}

std::uint64_t Profiler::dropped_spans() const {
  std::uint64_t n = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& log : logs_) {
    n += log->dropped.load(std::memory_order_relaxed);
  }
  return n;
}

double SchedulerTelemetry::efficiency() const {
  double worker_seconds = 0.0;
  for (const auto& b : batches) worker_seconds += b.workers * b.wall_seconds;
  return worker_seconds > 0.0 ? task_seconds / worker_seconds : 0.0;
}

double SchedulerTelemetry::speedup() const {
  return wall_seconds > 0.0 ? task_seconds / wall_seconds : 0.0;
}

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

Scope::Scope(const char* category, std::string_view label)
    : profiler_(g_profiler.load(std::memory_order_relaxed)),
      category_(category) {
  if (profiler_ == nullptr) return;
  label_.assign(label);
  start_ = util::wall_now();
}

Scope::~Scope() {
  if (profiler_ == nullptr) return;
  profiler_->record(category_, std::move(label_), start_, util::wall_now());
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

void write_profile(std::ostream& os, const Profiler& profiler) {
  const auto spans = profiler.spans();
  const auto sched = profiler.scheduler();

  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "balbench-wall-profile/1");
  w.field("clock", "host steady_clock seconds (observe-only, Sec. 10.2)");
  w.field("dropped_spans", profiler.dropped_spans());

  w.key("scheduler").begin_object();
  w.field("batches", static_cast<std::uint64_t>(sched.batches.size()));
  w.field("tasks", sched.tasks);
  w.field("stolen_tasks", sched.stolen_tasks);
  w.field("task_seconds", sched.task_seconds);
  w.field("stolen_seconds", sched.stolen_seconds);
  w.field("wall_seconds", sched.wall_seconds);
  w.field("critical_path_seconds", sched.critical_path_seconds);
  w.field("idle_seconds", sched.idle_seconds);
  w.field("parallel_efficiency", sched.efficiency());
  w.field("speedup", sched.speedup());
  w.key("per_batch").begin_array();
  for (const auto& b : sched.batches) {
    w.begin_object();
    w.field("batch", b.batch);
    w.field("tasks", static_cast<std::uint64_t>(b.tasks));
    w.field("workers", b.workers);
    w.field("wall_seconds", b.wall_seconds);
    w.field("task_seconds", b.task_seconds);
    w.field("max_task_seconds", b.max_task_seconds);
    w.field("stolen_tasks", b.stolen_tasks);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  // Per-category rollup: map iteration keeps the key order stable.
  std::map<std::string, std::pair<std::uint64_t, double>> categories;
  for (const auto& s : spans) {
    auto& [count, seconds] = categories[s.category];
    ++count;
    seconds += s.dur;
  }
  w.key("categories").begin_object();
  for (const auto& [name, agg] : categories) {
    w.key(name).begin_object();
    w.field("count", agg.first);
    w.field("seconds", agg.second);
    w.end_object();
  }
  w.end_object();

  w.key("spans").begin_array();
  for (const auto& s : spans) {
    w.begin_object();
    w.field("category", s.category);
    w.field("label", s.label);
    w.field("thread", static_cast<std::uint64_t>(s.thread));
    w.field("start", s.start);
    w.field("dur", s.dur);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_summary(std::ostream& os, const Profiler& profiler) {
  const auto sched = profiler.scheduler();
  char line[256];
  std::snprintf(line, sizeof line,
                "[prof] %zu batches, %llu tasks (%llu stolen): task %.3fs "
                "over wall %.3fs\n",
                sched.batches.size(),
                static_cast<unsigned long long>(sched.tasks),
                static_cast<unsigned long long>(sched.stolen_tasks),
                sched.task_seconds, sched.wall_seconds);
  os << line;
  std::snprintf(line, sizeof line,
                "[prof] critical path %.3fs, speedup %.2fx, efficiency %.2f, "
                "idle %.3fs, dropped spans %llu\n",
                sched.critical_path_seconds, sched.speedup(),
                sched.efficiency(),
                sched.idle_seconds,
                static_cast<unsigned long long>(profiler.dropped_spans()));
  os << line;
}

}  // namespace balbench::obs::prof
