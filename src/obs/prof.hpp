// Wall-clock profiler: scope spans and scheduler telemetry for the
// benchmark harness itself (DESIGN.md Sec. 11).
//
// The metrics registry (obs/metrics.hpp) observes *virtual* time and
// feeds byte-compared run records; this profiler observes *host* time
// and feeds nothing but stderr summaries, wall-profile JSON and the
// "wall" pid of a Chrome trace.  The two never mix: per the Sec. 10.2
// invariant no wall-clock quantity may enter a run record, and
// attaching a profiler must not change a single byte of any benchmark
// output (asserted by tests/report/run_record_test.cpp running with a
// profiler attached).
//
// Design mirrors the registry: one process-wide attach point
// (prof::attach), instrumentation sites that cost a single relaxed
// atomic load when detached (prof::Scope), and thread-local span logs
// so recording never takes a lock.  Each thread owns a fixed-capacity
// log registered on first use; spans publish with a release store of
// the log's count, so an exporter running concurrently reads a
// consistent prefix (write-once slots, no overwriting).  When a log
// fills up new spans are dropped and counted, never silently lost.
//
// Scheduler telemetry: Profiler implements util::PoolObserver, so
// attaching it instruments every ThreadPool batch -- per-task wall
// time and steal flags, per-batch wall windows -- from which it
// derives the numbers that tell whether --jobs actually helps:
// critical-path estimate (sum over batches of the longest task),
// parallel efficiency (task-seconds / workers x wall), idle time
// (workers x wall - task-seconds).
//
// Lifetime: detach() before destroying the profiler, and destroy it
// only after every ThreadPool that ran while it was attached is gone
// (the free util::parallel_for joins its transient pool before
// returning, so the tool-level pattern "attach, run, detach, export"
// is always safe).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/parallel.hpp"

namespace balbench::obs::prof {

/// One completed wall-clock span.  `thread` is the profiler-assigned
/// log index (not an OS tid): 0 is the first thread that recorded.
struct Span {
  std::string label;          // "" for unlabeled scopes and pool tasks
  const char* category = "";  // static string: "cell", "beff", "task", ...
  std::uint32_t thread = 0;
  double start = 0.0;  // seconds on the util::wall_now() axis
  double dur = 0.0;
};

/// Telemetry of one ThreadPool parallel_for batch.
struct BatchTelemetry {
  std::uint64_t batch = 0;
  std::size_t tasks = 0;
  int workers = 0;
  double wall_seconds = 0.0;       // batch begin -> end
  double task_seconds = 0.0;       // sum of task durations
  double max_task_seconds = 0.0;   // longest single task
  std::uint64_t stolen_tasks = 0;
  double stolen_seconds = 0.0;
};

/// Scheduler telemetry aggregated over every observed batch.
struct SchedulerTelemetry {
  std::vector<BatchTelemetry> batches;
  std::uint64_t tasks = 0;
  std::uint64_t stolen_tasks = 0;
  double task_seconds = 0.0;
  double stolen_seconds = 0.0;
  double wall_seconds = 0.0;  // sum of batch walls
  /// Lower bound on achievable wall time at infinite workers: the
  /// longest task of each batch chains through the batch barrier, so
  /// the estimate is the sum over batches of the longest task.
  double critical_path_seconds = 0.0;
  /// Worker-seconds spent not executing tasks: sum over batches of
  /// workers x wall - task-seconds (wake-up latency, queue scanning,
  /// and tail idleness while stragglers finish).
  double idle_seconds = 0.0;
  /// task-seconds / sum(workers x wall); 1.0 = every worker busy the
  /// whole time, 1/workers = the sweep ran effectively serially.
  [[nodiscard]] double efficiency() const;
  /// task-seconds / wall-seconds: the realized speedup over running
  /// the same tasks back to back on one thread.
  [[nodiscard]] double speedup() const;
};

class Profiler : public util::PoolObserver {
 public:
  /// `capacity_per_thread` bounds each thread's span log; spans beyond
  /// it are dropped and counted in dropped_spans().
  explicit Profiler(std::size_t capacity_per_thread = std::size_t{1} << 14);
  ~Profiler() override;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Records a completed span ending now; prof::Scope is the usual
  /// caller.  Wait-free against other threads (thread-local log).
  void record(const char* category, std::string label, double start_seconds,
              double end_seconds);

  // util::PoolObserver -- scheduler telemetry.  Tasks are also
  // recorded as spans (category "task") so they appear on the wall
  // timeline of the Chrome trace.
  void on_batch_begin(std::uint64_t batch, std::size_t n, int workers,
                      double start_seconds) override;
  void on_batch_end(std::uint64_t batch, double end_seconds) override;
  void on_task(std::uint64_t batch, std::size_t index, int worker, bool stolen,
               double start_seconds, double end_seconds) override;

  /// Every span recorded so far, sorted by (thread, start, dur, label)
  /// for a stable presentation.  Safe to call while threads are still
  /// recording (each log contributes a consistent prefix), but the
  /// usual pattern is to export after the instrumented work finished.
  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] SchedulerTelemetry scheduler() const;
  [[nodiscard]] std::uint64_t dropped_spans() const;

 private:
  struct ThreadLog;
  ThreadLog* log_for_this_thread();

  const std::size_t capacity_;
  const std::uint64_t id_;  // process-unique, keys the TLS log cache
  mutable std::mutex mutex_;  // guards logs_ layout and batches_
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  std::vector<BatchTelemetry> batches_;  // wall window filled at batch end
};

/// Attaches `p` as the process-wide profiler and as the ThreadPool
/// observer (nullptr detaches both).  Instrumentation sites read the
/// pointer with one relaxed atomic load -- zero cost while detached.
void attach(Profiler* p);
[[nodiscard]] Profiler* current();

/// RAII scope span: records [construction, destruction) into the
/// attached profiler under `category`/`label`.  When no profiler is
/// attached construction is a single atomic load and no label copy is
/// made.  The category must be a string literal (stored by pointer).
class Scope {
 public:
  explicit Scope(const char* category, std::string_view label = {});
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Profiler* profiler_;  // captured once; attach() mid-scope is ignored
  double start_ = 0.0;
  const char* category_;
  std::string label_;
};

/// Writes the wall-profile JSON (schema "balbench-wall-profile/1"):
/// scheduler telemetry, per-category totals, and every span.  All
/// values are host wall-clock seconds -- this file is observe-only and
/// is never byte-compared (two runs of the same configuration produce
/// different profiles; that is the point).
void write_profile(std::ostream& os, const Profiler& profiler);

/// Two-line human summary of the scheduler telemetry to `os` (the
/// tools print it to stderr after a sweep when profiling is on).
void write_summary(std::ostream& os, const Profiler& profiler);

}  // namespace balbench::obs::prof
