// Minimal streaming JSON writer with deterministic formatting.
//
// Run records, Chrome traces and the regenerated EXPERIMENTS.md tables
// are all byte-compared across --jobs values and across runs, so the
// serialization itself must be deterministic: keys are emitted in the
// order the caller writes them (callers iterate std::map), doubles use
// the shortest round-trip form (std::to_chars), and escaping follows
// RFC 8259 (the two mandatory escapes plus \uXXXX for control
// characters -- unit-tested in tests/obs/json_test.cpp).
//
// The writer is purely syntactic: it never reorders, deduplicates or
// validates keys.  Nesting errors (value without a key inside an
// object, unbalanced end calls) throw std::logic_error.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace balbench::obs {

/// JSON string escaping per RFC 8259: `"` and `\` are escaped, control
/// characters below 0x20 become \b \t \n \f \r or \u00XX.  Everything
/// else (including multi-byte UTF-8 sequences) passes through.
std::string json_escape(std::string_view s);

/// Shortest round-trip decimal form of a double ("0.1", not
/// "0.100000000000000006"); infinities and NaN (not valid JSON) are
/// emitted as null.
std::string json_double(double v);

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 writes compact single-line
  /// JSON (the record and trace formats use indent 1 for diffability).
  explicit JsonWriter(std::ostream& os, int indent = 1);
  ~JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next value; valid only inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

 private:
  enum class Ctx { Top, Object, Array };
  void before_value();
  void newline();

  std::ostream& os_;
  int indent_;
  struct Level {
    Ctx ctx;
    bool has_items = false;
    bool key_pending = false;
  };
  std::vector<Level> stack_;
  bool done_ = false;
};

}  // namespace balbench::obs
