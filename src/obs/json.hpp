// Minimal streaming JSON writer with deterministic formatting.
//
// Run records, Chrome traces and the regenerated EXPERIMENTS.md tables
// are all byte-compared across --jobs values and across runs, so the
// serialization itself must be deterministic: keys are emitted in the
// order the caller writes them (callers iterate std::map), doubles use
// the shortest round-trip form (std::to_chars), and escaping follows
// RFC 8259 (the two mandatory escapes plus \uXXXX for control
// characters -- unit-tested in tests/obs/json_test.cpp).
//
// The writer is purely syntactic: it never reorders, deduplicates or
// validates keys.  Nesting errors (value without a key inside an
// object, unbalanced end calls) throw std::logic_error.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace balbench::obs {

/// JSON string escaping per RFC 8259: `"` and `\` are escaped, control
/// characters below 0x20 become \b \t \n \f \r or \u00XX.  Everything
/// else (including multi-byte UTF-8 sequences) passes through.
std::string json_escape(std::string_view s);

/// Shortest round-trip decimal form of a double ("0.1", not
/// "0.100000000000000006"); infinities and NaN (not valid JSON) are
/// emitted as null.
std::string json_double(double v);

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 writes compact single-line
  /// JSON (the record and trace formats use indent 1 for diffability).
  explicit JsonWriter(std::ostream& os, int indent = 1);
  ~JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next value; valid only inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

 private:
  enum class Ctx { Top, Object, Array };
  void before_value();
  void newline();

  std::ostream& os_;
  int indent_;
  struct Level {
    Ctx ctx;
    bool has_items = false;
    bool key_pending = false;
  };
  std::vector<Level> stack_;
  bool done_ = false;
};

/// Parsed JSON value -- the read side of the records this repo writes
/// (perf baselines for the balbench-perf regression gate, schema
/// validation of emitted files).  Strict RFC 8259 subset: no comments,
/// no trailing commas, objects keep one value per key (last wins) in
/// std::map order.  All numbers parse as double, which round-trips the
/// writer's json_double output exactly.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }

  /// Typed accessors throw std::runtime_error on a kind mismatch, so
  /// schema errors in a baseline surface as one catchable message.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; throws if not an object or the key is
  /// absent.  `find` returns nullptr instead of throwing.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> v);
  static JsonValue make_object(std::map<std::string, JsonValue> v);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error).  Throws std::runtime_error on
/// malformed input, reporting the 1-based line and column plus the key
/// path of the enclosing container ("$.machines[0].roofline").
/// Container nesting deeper than 256
/// levels is rejected with a parse error rather than recursing into a
/// stack overflow (baseline files are attacker-adjacent inputs: a
/// corrupt download must not crash the perf gate).
JsonValue parse_json(std::string_view text);

}  // namespace balbench::obs
