// Metrics registry: counters, sums, gauges and virtual-time histograms
// for the simulation layers (DESIGN.md Sec. 10).
//
// A Registry is the write-side of the observability subsystem: the
// transport (parmsg), the MPI-I/O layer (pario), the filesystem model
// (pfsim), the kernel suite (core/kernels, `kernels.*` names) and the
// benchmark drivers increment metrics through handles obtained once at
// attach time.  Increments are wait-free atomic
// operations and reads (snapshot()) never block a writer -- the
// registry is lock-free on the read path; only *registration* of a new
// metric name takes a mutex, and instrumented components register all
// their handles up front.
//
// Determinism invariant (normative, DESIGN.md Sec. 10.2): every metric
// recorded into a registry that feeds a run record must be a pure
// function of the simulated configuration -- virtual-time durations,
// simulated byte counts, simulated call counts.  Host-side quantities
// (wall-clock seconds, work-stealing counts, thread ids) must never be
// recorded here; they live in util::ThreadPool::stats() and are
// reported out of band.  Under this invariant, per-cell snapshots
// merged in cell-index order are byte-identical for every --jobs
// value, like every other reported number.
//
// Units convention (enforced by the metric name, Sec. 10.1): names end
// in a unit suffix -- `_bytes` (bytes), `_seconds` (virtual seconds),
// `_calls` / `_msgs` / unsuffixed counts (events).  Bandwidth is never
// a metric; it is derived as bytes/seconds at report time.
//
// When no registry is attached to a component the instrumentation cost
// is a null-pointer test per call site (zero allocations, no atomics).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace balbench::obs {

/// Monotonic event count (merge across cells: sum).
class Counter {
 public:
  /// Adds `n` events; wait-free.
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Monotonic floating-point accumulator, e.g. amortized seek counts or
/// virtual seconds of busy time (merge across cells: sum).
class Sum {
 public:
  void add(double x) { v_.fetch_add(x, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Last-written level, e.g. a backlog size (merge across cells:
/// maximum, which is order-independent -- DESIGN.md Sec. 10.2).
class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  /// Keeps the larger of the current and new value.
  void set_max(double x) {
    double cur = v_.load(std::memory_order_relaxed);
    while (x > cur &&
           !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }
  /// Adds a (possibly negative) delta -- a level that rises and falls,
  /// e.g. the balbench-serve admission-queue depth.  Wait-free CAS
  /// loop, safe against concurrent set()/add() writers.
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Log2-bucketed histogram for positive quantities (virtual seconds,
/// bytes).  Bucket 0 collects non-positive values; bucket i >= 1
/// covers [kMinValue * 2^(i-1), kMinValue * 2^i).  With kMinValue =
/// 1e-9 (one virtual nanosecond) the top bucket is reached around
/// 6e14, enough for both second- and byte-valued observations.
class Histogram {
 public:
  static constexpr int kNumBuckets = 80;
  static constexpr double kMinValue = 1e-9;

  /// Bucket index for an observation; pure, unit-tested.
  static int bucket_index(double v);
  /// Inclusive lower bound of bucket i (0.0 for the underflow bucket).
  static double bucket_lower_bound(int i);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double max() const { return max_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Snapshot of one histogram: sparse non-empty buckets plus moments.
struct HistogramData {
  /// (bucket index, count) for every non-empty bucket, ascending index.
  std::vector<std::pair<int, std::uint64_t>> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;   // sum of observations (same unit as the metric)
  double max = 0.0;   // largest observation
  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Immutable copy of a registry's state, mergeable across sweep cells.
/// std::map keys give a deterministic iteration order for export.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> sums;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Cell-merge rules of DESIGN.md Sec. 10.2: counters and sums add,
  /// gauges keep the maximum, histograms add bucket-wise.  merge() is
  /// commutative except for floating-point sum rounding, which is why
  /// callers must merge in cell-index order.
  void merge(const MetricsSnapshot& other);

  [[nodiscard]] bool empty() const {
    return counters.empty() && sums.empty() && gauges.empty() &&
           histograms.empty();
  }
};

/// One timestamped metric observation kept for trace export ('C'
/// counter events in the Chrome trace); never part of run records.
struct MetricSample {
  int section = 0;      // registry section (= transport session) index
  double time = 0.0;    // virtual seconds within the section
  double value = 0.0;
  std::string name;     // metric name (shared taxonomy with the registry)
};

class Registry {
 public:
  /// Returns the named metric, creating it on first use.  The returned
  /// reference stays valid for the registry's lifetime.  Asking for an
  /// existing name with a different type throws std::logic_error.
  Counter& counter(const std::string& name);
  Sum& sum(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Records a timestamped sample for trace export.  Samples beyond
  /// `max_samples` are dropped (dropped_samples() reports how many).
  /// No-op unless enable_sampling(true) was called: run-record
  /// collection wants cheap atomic increments only, the trace exporter
  /// opts into the (mutex-guarded) sample log.
  void sample(const std::string& name, double time, double value);

  void enable_sampling(bool on) {
    sampling_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool sampling() const {
    return sampling_.load(std::memory_order_relaxed);
  }

  /// Starts a new sample section; SimTransport calls this once per
  /// session so samples align with tracer sessions in the trace.
  void begin_section();
  [[nodiscard]] int section() const {
    return section_.load(std::memory_order_relaxed);
  }

  /// Lock-free with respect to metric writers: values are read with
  /// relaxed atomic loads.  The registration mutex is held only to
  /// enumerate the name table.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] std::vector<MetricSample> samples() const;
  [[nodiscard]] std::size_t dropped_samples() const {
    return dropped_samples_.load(std::memory_order_relaxed);
  }

  explicit Registry(std::size_t max_samples = 1 << 16)
      : max_samples_(max_samples) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  enum class Kind { Counter, Sum, Gauge, Histogram };
  struct Slot {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Sum> sum;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Slot& slot(const std::string& name, Kind kind);

  mutable std::mutex mutex_;  // guards names_ and samples_ layout only
  std::map<std::string, Slot> names_;
  std::vector<MetricSample> samples_;
  std::size_t max_samples_;
  std::atomic<int> section_{0};
  std::atomic<std::size_t> dropped_samples_{0};
  std::atomic<bool> sampling_{false};
};

}  // namespace balbench::obs
